//! Store-and-forward wiring between the offline engine and the durable
//! segment spool (DESIGN.md §6d).
//!
//! During a disconnect the offline pipeline keeps compressing under its
//! storage budget; egress drains land in the [`adaedge_storage::Spool`]
//! as CRC-framed, sequenced records via [`SpoolSink`]. On reconnect,
//! [`run_reconnect`] replays the backlog **in capture order at a
//! controlled rate** through the existing [`FramePacker`], while the
//! ingest side's [`IngestLedger`] dedups duplicates idempotently and
//! reports `acked_seq` (highest contiguous durably-ingested sequence)
//! back to the spool — which garbage-collects only fully-ACKed closed
//! segments. Together: at-least-once delivery, exactly-once ingest.

use crate::error::AdaEdgeError;
use crate::frame::{FrameConfig, FrameItem, FramePacker, Priority, StreamId, TransportFrame};
use crate::offline::OfflineAdaEdge;
use adaedge_codecs::{CodecId, CodecRegistry, CompressedBlock};
use adaedge_storage::spool::{ReplayItem, Spool, SpoolError, SpoolStats};
use std::collections::BTreeSet;

/// Errors from the store-and-forward layer: either the durable spool or
/// the compression engine feeding it.
#[derive(Debug)]
pub enum RelayError {
    /// The spool failed (I/O, configuration).
    Spool(SpoolError),
    /// The engine failed while producing egress.
    Engine(AdaEdgeError),
}

impl std::fmt::Display for RelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayError::Spool(e) => write!(f, "relay spool error: {e}"),
            RelayError::Engine(e) => write!(f, "relay engine error: {e}"),
        }
    }
}

impl std::error::Error for RelayError {}

impl From<SpoolError> for RelayError {
    fn from(e: SpoolError) -> Self {
        RelayError::Spool(e)
    }
}

impl From<AdaEdgeError> for RelayError {
    fn from(e: AdaEdgeError) -> Self {
        RelayError::Engine(e)
    }
}

/// Serialize a compressed block into a spool-record payload.
///
/// Format (little-endian): codec-name len `u8` + name bytes, `n_points:
/// u32`, payload len `u32`, payload bytes — the same name-keyed idiom as
/// the persist formats, so the record survives codec-enum reordering.
/// Integrity is the spool frame's CRC-32C; no second checksum here.
pub fn encode_block(block: &CompressedBlock) -> Vec<u8> {
    let name = block.codec.name().as_bytes();
    let mut out = Vec::with_capacity(1 + name.len() + 8 + block.payload.len());
    out.push(name.len() as u8);
    out.extend_from_slice(name);
    out.extend_from_slice(&block.n_points.to_le_bytes());
    out.extend_from_slice(&(block.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&block.payload);
    out
}

/// Deserialize a spool-record payload written by [`encode_block`].
/// Returns `None` on any structural mismatch (defensive: the spool frame
/// CRC already rejects bit rot, so this only fires on logic errors or
/// foreign payloads).
pub fn decode_block(bytes: &[u8]) -> Option<CompressedBlock> {
    let (&name_len, rest) = bytes.split_first()?;
    let name_len = name_len as usize;
    if rest.len() < name_len + 8 {
        return None;
    }
    let (name, rest) = rest.split_at(name_len);
    let codec = CodecId::from_name(std::str::from_utf8(name).ok()?)?;
    let (n_points_bytes, rest) = rest.split_at(4);
    let n_points = u32::from_le_bytes(n_points_bytes.try_into().ok()?);
    let (len_bytes, rest) = rest.split_at(4);
    let payload_len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
    if rest.len() != payload_len {
        return None;
    }
    Some(CompressedBlock {
        codec,
        n_points,
        payload: rest.to_vec(),
    })
}

/// The disconnect-side sink: compressed egress goes into the durable
/// spool instead of over the (down) link.
#[derive(Debug)]
pub struct SpoolSink {
    spool: Spool,
    spooled_blocks: u64,
    spooled_payload_bytes: u64,
}

impl SpoolSink {
    /// Wrap an open spool.
    pub fn new(spool: Spool) -> Self {
        Self {
            spool,
            spooled_blocks: 0,
            spooled_payload_bytes: 0,
        }
    }

    /// Spool one compressed block, returning its capture sequence.
    pub fn put_block(
        &mut self,
        timestamp: u64,
        block: &CompressedBlock,
    ) -> Result<u64, SpoolError> {
        let payload = encode_block(block);
        let seq = self.spool.append(timestamp, &payload)?;
        self.spooled_blocks += 1;
        self.spooled_payload_bytes += payload.len() as u64;
        Ok(seq)
    }

    /// Flush the batched-sync window (ship-boundary durability).
    pub fn sync(&mut self) -> Result<(), SpoolError> {
        self.spool.sync()
    }

    /// Blocks spooled through this sink.
    pub fn spooled_blocks(&self) -> u64 {
        self.spooled_blocks
    }

    /// Encoded payload bytes spooled through this sink (frame overheads
    /// excluded).
    pub fn spooled_payload_bytes(&self) -> u64 {
        self.spooled_payload_bytes
    }

    /// The underlying spool (read access).
    pub fn spool(&self) -> &Spool {
        &self.spool
    }

    /// The underlying spool (mutable — ACK reporting, replay).
    pub fn spool_mut(&mut self) -> &mut Spool {
        &mut self.spool
    }

    /// Unwrap the spool.
    pub fn into_spool(self) -> Spool {
        self.spool
    }
}

/// Drain the offline pipeline's freshest segments (its reconnection
/// egress plan) into the spool — the "disconnect" leg of store-and-
/// forward. Returns `(blocks, encoded payload bytes)` spooled.
pub fn spool_offline_egress(
    edge: &mut OfflineAdaEdge,
    sink: &mut SpoolSink,
    byte_budget: usize,
    timestamp: u64,
) -> Result<(usize, u64), RelayError> {
    let shipped = edge.drain(byte_budget)?;
    let mut bytes = 0u64;
    let count = shipped.len();
    for (_, block) in &shipped {
        sink.put_block(timestamp, block)?;
        bytes += block.payload.len() as u64;
    }
    sink.sync()?;
    Ok((count, bytes))
}

/// The ingest side's idempotent at-least-once ledger.
///
/// Replay (and live publishing) may deliver a sequence more than once —
/// after a reconnect the spool resends everything above the last ACK it
/// saw. [`IngestLedger::accept`] admits each sequence exactly once;
/// `acked_seq` is the highest *contiguous* sequence durably ingested,
/// which is what the spool's ACK-gated GC keys on. Known-lost ranges
/// (reported by the replayer as gaps) advance the cursor without
/// counting as ingested.
#[derive(Debug, Clone, Default)]
pub struct IngestLedger {
    acked: u64,
    out_of_order: BTreeSet<u64>,
    accepted: u64,
    duplicates: u64,
    lost: u64,
}

impl IngestLedger {
    /// Fresh ledger (nothing ingested; `acked_seq() == 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one delivered sequence. Returns `true` when it is new (the
    /// caller should ingest the payload), `false` for a duplicate (drop
    /// it — idempotency). Sequence 0 is never valid.
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq == 0 || seq <= self.acked || self.out_of_order.contains(&seq) {
            self.duplicates += 1;
            return false;
        }
        self.out_of_order.insert(seq);
        self.accepted += 1;
        self.advance();
        true
    }

    /// Record that sequences `from..=to` are unrecoverable at the source
    /// (spool bit rot or retention drop): the contiguity cursor may move
    /// past them so delivery of the surviving backlog can still be ACKed.
    pub fn mark_lost(&mut self, from: u64, to: u64) {
        for seq in from.max(1)..=to {
            if seq > self.acked && self.out_of_order.insert(seq) {
                self.lost += 1;
            }
        }
        self.advance();
    }

    fn advance(&mut self) {
        while self.out_of_order.remove(&(self.acked + 1)) {
            self.acked += 1;
        }
    }

    /// Whether `seq` has already been admitted (contiguously or out of
    /// order). Receivers use this to drop duplicate fragments *before*
    /// spending reassembly work on a record the ledger would refuse.
    pub fn seen(&self, seq: u64) -> bool {
        seq != 0 && (seq <= self.acked || self.out_of_order.contains(&seq))
    }

    /// Highest contiguous sequence ingested (or known lost).
    pub fn acked_seq(&self) -> u64 {
        self.acked
    }

    /// Sequences accepted exactly once.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Duplicate deliveries dropped.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Sequences recorded lost at the source.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Accepted-but-not-yet-contiguous sequences (waiting on a hole).
    pub fn pending_out_of_order(&self) -> usize {
        self.out_of_order.len()
    }
}

/// Reconnect-replay configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Records drained per tick — the controlled backfill rate (the ADR's
    /// rate-limited replay; one tick ≈ one transmit window).
    pub records_per_tick: usize,
    /// Transport frame geometry for the packer.
    pub frame: FrameConfig,
    /// Stream id stamped on replayed fragments.
    pub stream: StreamId,
    /// Transmission class for backfill (default [`Priority::Bulk`]: live
    /// traffic preempts replay, per the packer's ordering).
    pub priority: Priority,
    /// Decode every replayed block through the registry and count
    /// failures (end-to-end verification mode; costs decompression time).
    pub verify_decode: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            records_per_tick: 64,
            frame: FrameConfig::default(),
            stream: 0,
            priority: Priority::Bulk,
            verify_decode: false,
        }
    }
}

/// What a reconnect replay did (counters surfaced into reports).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Rate-limit ticks consumed.
    pub ticks: u64,
    /// Records pulled from the spool.
    pub replayed_records: u64,
    /// Records the ledger admitted (ingested exactly once).
    pub ingested_records: u64,
    /// Duplicate deliveries the ledger dropped.
    pub duplicate_records: u64,
    /// Sequences reported lost (gaps: bit rot / retention).
    pub lost_records: u64,
    /// Replayed records whose payload failed to decode back into a
    /// compressed block (only counted with `verify_decode`).
    pub decode_failures: u64,
    /// Transport frames emitted by the packer.
    pub frames_emitted: u64,
    /// Frame bytes emitted (payload + fragment overheads).
    pub frame_bytes: u64,
    /// Largest emitted frame (never above the configured cap).
    pub max_frame_used: usize,
    /// Segment files GC'd during the replay (ACK-gated).
    pub gc_segments: u64,
    /// The ledger's final contiguous cursor.
    pub final_acked_seq: u64,
    /// Spool depth and lifetime counters after the replay.
    pub spool: SpoolStats,
}

/// Replay the spool's durable backlog (everything above the ledger's
/// cursor) through a [`FramePacker`] at a controlled rate — the
/// "reconnect" leg of store-and-forward.
///
/// Every tick drains up to `records_per_tick` records, emits the frames
/// that are ready, and reports the ledger's `acked_seq` back to the
/// spool, which GCs fully-ACKed closed segments as the replay advances —
/// spool disk usage shrinks *during* a long backfill, not after it.
/// Emitted frames are passed to `emit` (transmit hook; tests collect
/// them, production would hand them to the radio).
pub fn run_reconnect(
    spool: &mut Spool,
    ledger: &mut IngestLedger,
    registry: &CodecRegistry,
    cfg: &ReplayConfig,
    mut emit: impl FnMut(TransportFrame),
) -> Result<ReplayReport, SpoolError> {
    assert!(cfg.records_per_tick > 0, "records_per_tick must be > 0");
    let mut packer = FramePacker::new(cfg.frame);
    let mut report = ReplayReport {
        ticks: 0,
        replayed_records: 0,
        ingested_records: 0,
        duplicate_records: 0,
        lost_records: 0,
        decode_failures: 0,
        frames_emitted: 0,
        frame_bytes: 0,
        max_frame_used: 0,
        gc_segments: 0,
        final_acked_seq: 0,
        spool: SpoolStats::default(),
    };
    let dup_before = ledger.duplicates();
    let lost_before = ledger.lost();
    let ingested_before = ledger.accepted();

    let replayer = spool.replayer(ledger.acked_seq())?;
    let items: Vec<ReplayItem> = replayer.collect();
    let mut in_tick = 0usize;
    for item in items {
        match item {
            ReplayItem::Record(rec) => {
                report.replayed_records += 1;
                in_tick += 1;
                if !ledger.accept(rec.seq) {
                    // Duplicate delivery: idempotent drop, nothing packed.
                } else {
                    let mut len = rec.payload.len();
                    if cfg.verify_decode {
                        match decode_block(&rec.payload) {
                            Some(block) => {
                                if registry.decompress(&block).is_err() {
                                    report.decode_failures += 1;
                                }
                                len = block.payload.len();
                            }
                            None => report.decode_failures += 1,
                        }
                    }
                    packer.push(FrameItem {
                        stream: cfg.stream,
                        priority: cfg.priority,
                        seq: rec.seq,
                        len,
                    });
                }
            }
            ReplayItem::Gap { from_seq, to_seq } => {
                ledger.mark_lost(from_seq, to_seq);
            }
        }
        if in_tick >= cfg.records_per_tick {
            in_tick = 0;
            report.ticks += 1;
            while packer.frame_ready() {
                if let Some(frame) = packer.next_frame() {
                    emit(frame);
                } else {
                    break;
                }
            }
            report.gc_segments += spool.ack(ledger.acked_seq())? as u64;
        }
    }
    if in_tick > 0 {
        report.ticks += 1;
    }
    for frame in packer.flush() {
        emit(frame);
    }
    report.gc_segments += spool.ack(ledger.acked_seq())? as u64;

    report.ingested_records = ledger.accepted() - ingested_before;
    report.duplicate_records = ledger.duplicates() - dup_before;
    report.lost_records = ledger.lost() - lost_before;
    report.frames_emitted = packer.frames_emitted();
    report.frame_bytes = packer.bytes_emitted();
    report.max_frame_used = packer.max_frame_used();
    report.final_acked_seq = ledger.acked_seq();
    report.spool = spool.stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_storage::spool::SpoolConfig;
    use std::time::Duration;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "adaedge-spooling-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn spool(dir: &std::path::Path) -> Spool {
        let mut c = SpoolConfig::new(dir);
        c.sync_interval = Duration::from_secs(3600);
        c.segment_max_bytes = 4096;
        Spool::open(c).unwrap()
    }

    fn sample_block(i: u64) -> CompressedBlock {
        CompressedBlock {
            codec: CodecId::Raw,
            n_points: 4,
            payload: (0..32u8).map(|b| b.wrapping_add(i as u8)).collect(),
        }
    }

    #[test]
    fn block_roundtrips_through_spool_payload() {
        let block = sample_block(3);
        let bytes = encode_block(&block);
        assert_eq!(decode_block(&bytes).unwrap(), block);
        // Structural damage is rejected, not panicked on.
        assert!(decode_block(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_block(&[]).is_none());
        let mut wrong_name = bytes.clone();
        wrong_name[1] = b'?';
        assert!(decode_block(&wrong_name).is_none());
    }

    #[test]
    fn ledger_dedups_and_tracks_contiguity() {
        let mut ledger = IngestLedger::new();
        assert!(ledger.accept(1));
        assert!(ledger.accept(3));
        assert_eq!(ledger.acked_seq(), 1, "3 waits on the hole at 2");
        assert!(!ledger.accept(3), "duplicate dropped");
        assert!(ledger.accept(2));
        assert_eq!(ledger.acked_seq(), 3);
        assert!(!ledger.accept(1), "already contiguous");
        assert!(!ledger.accept(0), "seq 0 invalid");
        assert_eq!(ledger.accepted(), 3);
        assert_eq!(ledger.duplicates(), 3);
    }

    #[test]
    fn ledger_lost_ranges_advance_cursor_without_counting_ingest() {
        let mut ledger = IngestLedger::new();
        assert!(ledger.accept(1));
        ledger.mark_lost(2, 4);
        assert_eq!(ledger.acked_seq(), 4);
        assert_eq!(ledger.lost(), 3);
        assert!(ledger.accept(5));
        assert_eq!(ledger.acked_seq(), 5);
        assert_eq!(ledger.accepted(), 2);
        // A "lost" record that later shows up is a duplicate.
        assert!(!ledger.accept(3));
    }

    #[test]
    fn reconnect_replays_everything_exactly_once_and_gcs() {
        let dir = tmpdir("reconnect");
        let mut sink = SpoolSink::new(spool(&dir));
        for i in 0..200u64 {
            sink.put_block(i, &sample_block(i)).unwrap();
        }
        sink.sync().unwrap();
        let mut sp = sink.into_spool();
        let mut ledger = IngestLedger::new();
        let reg = CodecRegistry::new(4);
        let cfg = ReplayConfig {
            records_per_tick: 16,
            verify_decode: true,
            ..ReplayConfig::default()
        };
        let mut frames = Vec::new();
        let report = run_reconnect(&mut sp, &mut ledger, &reg, &cfg, |f| frames.push(f)).unwrap();
        assert_eq!(report.replayed_records, 200);
        assert_eq!(report.ingested_records, 200);
        assert_eq!(report.duplicate_records, 0);
        assert_eq!(report.decode_failures, 0);
        assert_eq!(report.final_acked_seq, 200);
        assert_eq!(report.ticks, 200 / 16 + 1);
        assert!(report.frames_emitted > 0);
        assert!(report.max_frame_used <= cfg.frame.payload_cap);
        assert_eq!(report.frames_emitted as usize, frames.len());
        // ACK-gated GC ran during the replay: only the open segment's
        // records remain on disk.
        assert!(report.gc_segments > 0, "GC should run mid-replay");
        assert_eq!(report.spool.closed_segments, 0);
        // A second reconnect has nothing new: full dedup, zero ingest.
        let report2 = run_reconnect(&mut sp, &mut ledger, &reg, &cfg, |_| {}).unwrap();
        assert_eq!(report2.ingested_records, 0);
        assert_eq!(report2.final_acked_seq, 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reconnect_resumes_mid_backlog_idempotently() {
        let dir = tmpdir("resume");
        let mut sp = spool(&dir);
        for i in 0..50u64 {
            sp.append(i, &encode_block(&sample_block(i))).unwrap();
        }
        sp.sync().unwrap();
        let reg = CodecRegistry::new(4);
        let cfg = ReplayConfig::default();
        // First link window: the ingest side saw some records but its ACK
        // (say 20) only partially covers them.
        let mut ledger = IngestLedger::new();
        for seq in 1..=20u64 {
            ledger.accept(seq);
        }
        let report = run_reconnect(&mut sp, &mut ledger, &reg, &cfg, |_| {}).unwrap();
        assert_eq!(report.replayed_records, 30, "only the un-ACKed tail");
        assert_eq!(report.ingested_records, 30);
        assert_eq!(ledger.accepted(), 50);
        std::fs::remove_dir_all(&dir).ok();
    }
}
