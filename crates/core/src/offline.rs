//! Offline mode (§IV-B2, §IV-C2): no egress link — data keeps evolving
//! inside a hard storage budget.
//!
//! Incoming segments are compressed with the lossless MAB and stored. When
//! occupancy crosses `θ × budget` (θ = 0.8 in the paper) the recoding
//! cascade wakes up: policy-ordered victims are re-compressed to half
//! their current size by the ratio-banded lossy MAB, same-codec recodes
//! using virtual decompression. A segment that cannot shrink further is
//! skipped; the experiment fails only when even the cascade cannot make
//! room for new data.

use crate::error::{AdaEdgeError, Result};
use crate::selector::{BandedLossySelector, LosslessSelector, Selection, SelectorConfig};
use crate::targets::{OptimizationTarget, RewardEvaluator};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_ml::Model;
use adaedge_storage::{
    CompressionPolicy, FifoPolicy, LruPolicy, QueryCountPolicy, SegmentId, SegmentStore,
};
use std::collections::HashMap;

/// Which compression-sequencing policy to run (§IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used (AdaEdge's default).
    Lru,
    /// Insertion order (RRDTool-style round robin).
    Fifo,
    /// Least-queried first.
    QueryCount,
}

impl PolicyKind {
    fn build(self) -> Box<dyn CompressionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::QueryCount => Box::new(QueryCountPolicy::new()),
        }
    }
}

/// Offline pipeline configuration.
pub struct OfflineConfig {
    /// Hard storage budget in bytes.
    pub storage_budget_bytes: usize,
    /// Recoding trigger as a fraction of the budget (paper: 0.8).
    pub recode_threshold: f64,
    /// Each recoding pass shrinks a victim to this fraction of its current
    /// size (paper: 0.5 — "reduced to half").
    pub recode_factor: f64,
    /// Lossless candidate arms.
    pub lossless_arms: Vec<CodecId>,
    /// Lossy candidate arms.
    pub lossy_arms: Vec<CodecId>,
    /// MAB hyper-parameters (paper: ε = 0.1 offline).
    pub selector: SelectorConfig,
    /// The workload target the lossy MABs optimize.
    pub target: OptimizationTarget,
    /// Frozen model for ML targets.
    pub model: Option<Model>,
    /// Dataset instance length.
    pub instance_len: usize,
    /// Dataset decimal precision.
    pub precision: u8,
    /// Sequencing policy.
    pub policy: PolicyKind,
    /// Compression-ratio band edges for the lossy MAB set (§IV-C2);
    /// a single edge `[1.0]` collapses to one instance (ablation).
    pub band_edges: Vec<f64>,
    /// Keep originals for reward evaluation (experiment harness mode; a
    /// production deployment would sample instead).
    pub keep_originals: bool,
}

impl OfflineConfig {
    /// Defaults matching the paper's offline experiments.
    pub fn new(storage_budget_bytes: usize, target: OptimizationTarget) -> Self {
        Self {
            storage_budget_bytes,
            recode_threshold: 0.8,
            recode_factor: 0.5,
            lossless_arms: CodecRegistry::lossless_candidates(),
            lossy_arms: CodecRegistry::lossy_candidates(),
            selector: SelectorConfig::offline(),
            target,
            model: None,
            instance_len: 0,
            precision: 4,
            policy: PolicyKind::Lru,
            band_edges: adaedge_bandit::default_band_edges(),
            keep_originals: true,
        }
    }
}

/// One reconstructed segment: (id, reconstruction, original-if-kept).
pub type ReconstructedSegment = (SegmentId, Vec<f64>, Option<Vec<f64>>);

/// Outcome of ingesting one segment.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Id the segment was stored under.
    pub id: SegmentId,
    /// The lossless selection that stored it.
    pub selection: Selection,
    /// Recoding passes triggered by this ingest.
    pub recodes: usize,
    /// Seconds spent recoding.
    pub recode_seconds: f64,
    /// Storage utilization after the ingest.
    pub utilization: f64,
}

/// The offline AdaEdge pipeline.
pub struct OfflineAdaEdge {
    reg: CodecRegistry,
    store: SegmentStore,
    lossless: LosslessSelector,
    lossy: BandedLossySelector,
    threshold: f64,
    recode_factor: f64,
    originals: Option<HashMap<SegmentId, Vec<f64>>>,
    total_recodes: u64,
}

impl std::fmt::Debug for OfflineAdaEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OfflineAdaEdge")
            .field("store", &self.store)
            .field("total_recodes", &self.total_recodes)
            .finish()
    }
}

impl OfflineAdaEdge {
    /// Build the pipeline.
    pub fn new(config: OfflineConfig) -> Result<Self> {
        if !(0.0..=1.0).contains(&config.recode_threshold) {
            return Err(AdaEdgeError::Config("recode_threshold must be in [0,1]"));
        }
        if !(0.0..1.0).contains(&config.recode_factor) || config.recode_factor == 0.0 {
            return Err(AdaEdgeError::Config("recode_factor must be in (0,1)"));
        }
        let evaluator = RewardEvaluator::new(config.target, config.model, config.instance_len);
        Ok(Self {
            reg: CodecRegistry::new(config.precision),
            store: SegmentStore::new(Some(config.storage_budget_bytes), config.policy.build()),
            lossless: LosslessSelector::new(config.lossless_arms, config.selector),
            lossy: BandedLossySelector::with_edges(
                config.lossy_arms,
                config.selector,
                evaluator,
                config.band_edges,
            ),
            threshold: config.recode_threshold,
            recode_factor: config.recode_factor,
            originals: config.keep_originals.then(HashMap::new),
            total_recodes: 0,
        })
    }

    /// The codec registry in use.
    pub fn registry(&self) -> &CodecRegistry {
        &self.reg
    }

    /// The segment store (read access).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Storage utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.store.utilization()
    }

    /// Total recoding passes so far.
    pub fn total_recodes(&self) -> u64 {
        self.total_recodes
    }

    /// The lossless MAB's current greedy arm.
    pub fn greedy_lossless_arm(&self) -> CodecId {
        self.lossless.greedy_arm()
    }

    /// The mean compression ratio the whole store must reach to fit under
    /// the recoding threshold. Victims already at or below it should be
    /// spared while less-compressed victims exist — otherwise the cascade
    /// goes depth-first on the LRU order and over-compresses old segments
    /// (damaging accuracy) while fresh segments never share the burden.
    fn required_mean_ratio(&self) -> f64 {
        let raw_bytes: usize = self
            .store
            .iter()
            .map(|s| s.n_points() * adaedge_codecs::POINT_BYTES)
            .sum();
        if raw_bytes == 0 {
            return 0.0;
        }
        let budget = self.store.budget_bytes().expect("budgeted store") as f64;
        (self.threshold * budget / raw_bytes as f64).min(1.0)
    }

    /// Recode the least-valuable shrinkable victim once. Returns the bytes
    /// freed (0 if nothing could shrink).
    fn recode_one(&mut self) -> Result<(usize, f64)> {
        let r_req = self.required_mean_ratio();
        // Two passes over the LRU order: first only victims still above the
        // globally required mean ratio, then (if space is still needed)
        // anything that can shrink.
        let victims = self.store.victim_order();
        let mut ordered: Vec<_> = victims
            .iter()
            .copied()
            .filter(|&id| {
                self.store
                    .peek(id)
                    .map(|s| s.ratio() > r_req)
                    .unwrap_or(false)
            })
            .collect();
        ordered.extend(victims.iter().copied().filter(|&id| {
            self.store
                .peek(id)
                .map(|s| s.ratio() <= r_req)
                .unwrap_or(false)
        }));
        for id in ordered {
            let Some(seg) = self.store.peek(id) else {
                continue;
            };
            let Some(block) = seg.block() else { continue };
            let old_bytes = block.compressed_bytes();
            // Halve by default (§IV-C2), but never push a victim far below
            // the globally required mean ratio: compressing harder than the
            // budget demands only costs accuracy.
            let target = (seg.ratio() * self.recode_factor).max(r_req.min(seg.ratio() * 0.9));
            let original = self.originals.as_ref().and_then(|m| m.get(&id)).cloned();
            let block = block.clone();
            match self
                .lossy
                .recode(&self.reg, &block, original.as_deref(), target)
            {
                Ok(sel) => {
                    let freed = old_bytes.saturating_sub(sel.block.compressed_bytes());
                    let seconds = sel.seconds;
                    self.store.replace(id, sel.block)?;
                    self.total_recodes += 1;
                    if freed > 0 {
                        return Ok((freed, seconds));
                    }
                    // Shrunk to the same size (shouldn't happen); try next.
                }
                Err(AdaEdgeError::NoFeasibleArm { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok((0, 0.0))
    }

    /// Make room so `incoming` more bytes keep usage at or below the
    /// recoding threshold (or at least within the budget).
    fn ensure_space(&mut self, incoming: usize) -> Result<(usize, f64)> {
        let budget = self
            .store
            .budget_bytes()
            .expect("offline store always has a budget") as f64;
        let mut recodes = 0usize;
        let mut seconds = 0.0f64;
        loop {
            let projected = (self.store.used_bytes() + incoming) as f64;
            if projected <= self.threshold * budget {
                return Ok((recodes, seconds));
            }
            let (freed, s) = self.recode_one()?;
            seconds += s;
            if freed == 0 {
                // Nothing can shrink further. Accept anything that still
                // fits the hard budget; otherwise the ingest fails.
                if projected <= budget {
                    return Ok((recodes, seconds));
                }
                return Err(AdaEdgeError::Store(
                    adaedge_storage::StoreError::BudgetExceeded {
                        needed: incoming,
                        available: (budget as usize).saturating_sub(self.store.used_bytes()),
                    },
                ));
            }
            recodes += 1;
        }
    }

    /// Ingest one segment: lossless-compress, make room, store.
    pub fn ingest(&mut self, data: &[f64]) -> Result<IngestReport> {
        let selection = self.lossless.compress(&self.reg, data)?;
        let (recodes, recode_seconds) = self.ensure_space(selection.block.compressed_bytes())?;
        let id = self.store.put_compressed(selection.block.clone())?;
        if let Some(originals) = self.originals.as_mut() {
            originals.insert(id, data.to_vec());
        }
        Ok(IngestReport {
            id,
            selection,
            recodes,
            recode_seconds,
            utilization: self.store.utilization(),
        })
    }

    /// Reconstruct one stored segment (no policy effect).
    pub fn reconstruct(&self, id: SegmentId) -> Result<Vec<f64>> {
        let seg = self.store.peek(id).ok_or(AdaEdgeError::Store(
            adaedge_storage::StoreError::NotFound(id),
        ))?;
        match seg.block() {
            Some(block) => Ok(self.reg.decompress(block)?),
            None => Ok(match &seg.data {
                adaedge_storage::SegmentData::Raw(points) => points.clone(),
                adaedge_storage::SegmentData::Compressed(_) => unreachable!("block() is None"),
            }),
        }
    }

    /// Reconstruct every stored segment in ingestion order, paired with the
    /// retained original (when `keep_originals`).
    pub fn reconstruct_all(&self) -> Result<Vec<ReconstructedSegment>> {
        let mut out = Vec::with_capacity(self.store.len());
        for id in self.store.ids() {
            let rec = self.reconstruct(id)?;
            let orig = self.originals.as_ref().and_then(|m| m.get(&id)).cloned();
            out.push((id, rec, orig));
        }
        Ok(out)
    }

    /// Plan an egress batch for an intermittent reconnection: which
    /// segments to ship within `byte_budget` compressed bytes.
    ///
    /// The paper leaves reconnection bandwidth planning as future work
    /// (§IV-C2); this reference strategy ships the *freshest* segments
    /// first (newly ingested data is the most valuable, §IV-F, and the
    /// least compressed, so shipping it preserves the most information per
    /// transmitted byte). Greedy knapsack by recency: a segment that does
    /// not fit is skipped in favour of smaller, older ones.
    pub fn drain_plan(&self, byte_budget: usize) -> Vec<SegmentId> {
        let mut ids: Vec<SegmentId> = self.store.ids();
        ids.sort_by_key(|&id| {
            std::cmp::Reverse(self.store.peek(id).map(|s| s.timestamp).unwrap_or(0))
        });
        let mut plan = Vec::new();
        let mut used = 0usize;
        for id in ids {
            let Some(seg) = self.store.peek(id) else {
                continue;
            };
            let bytes = seg.size_bytes();
            if used + bytes <= byte_budget {
                used += bytes;
                plan.push(id);
            }
        }
        plan
    }

    /// Execute a drain plan: remove the planned segments from the store
    /// (they have been shipped upstream) and return their blocks in plan
    /// order. Frees budget for continued ingestion.
    pub fn drain(
        &mut self,
        byte_budget: usize,
    ) -> Result<Vec<(SegmentId, adaedge_codecs::CompressedBlock)>> {
        let plan = self.drain_plan(byte_budget);
        let mut shipped = Vec::with_capacity(plan.len());
        for id in plan {
            let seg = self.store.remove(id)?;
            if let Some(originals) = self.originals.as_mut() {
                originals.remove(&id);
            }
            if let adaedge_storage::SegmentData::Compressed(block) = seg.data {
                shipped.push((id, block));
            }
        }
        Ok(shipped)
    }

    /// Run a query over a stored segment: reconstructs it and marks the
    /// access so the LRU policy protects it from aggressive recoding.
    pub fn query_segment(&mut self, id: SegmentId) -> Result<Vec<f64>> {
        let seg = self.store.get(id).ok_or(AdaEdgeError::Store(
            adaedge_storage::StoreError::NotFound(id),
        ))?;
        match &seg.data {
            adaedge_storage::SegmentData::Raw(points) => Ok(points.clone()),
            adaedge_storage::SegmentData::Compressed(block) => {
                let block = block.clone();
                Ok(self.reg.decompress(&block)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggKind;

    fn smooth_segment(seed: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (seed * n + i) as f64 * 0.01;
                ((x.sin() * 3.0) * 1e4).round() / 1e4
            })
            .collect()
    }

    fn pipeline(budget: usize) -> OfflineAdaEdge {
        OfflineAdaEdge::new(OfflineConfig::new(
            budget,
            OptimizationTarget::agg(AggKind::Sum),
        ))
        .unwrap()
    }

    #[test]
    fn ingests_within_budget_without_recoding() {
        let mut edge = pipeline(1 << 20);
        for s in 0..5 {
            let report = edge.ingest(&smooth_segment(s, 1000)).unwrap();
            assert_eq!(report.recodes, 0);
        }
        assert_eq!(edge.store().len(), 5);
        assert_eq!(edge.total_recodes(), 0);
    }

    #[test]
    fn recoding_kicks_in_at_threshold_and_bounds_space() {
        // Tiny budget: raw segment = 8000 B, lossless ~2000 B, budget fits
        // only a few before the cascade must run.
        let mut edge = pipeline(10_000);
        for s in 0..40 {
            let report = edge.ingest(&smooth_segment(s, 1000)).unwrap();
            assert!(report.utilization <= 1.0 + 1e-9);
        }
        assert!(edge.total_recodes() > 0, "cascade never ran");
        assert!(edge.store().len() == 40, "no segment may be dropped");
        // Old segments got recoded to much smaller ratios.
        let min_ratio = edge
            .store()
            .iter()
            .map(|s| s.ratio())
            .fold(f64::INFINITY, f64::min);
        assert!(min_ratio < 0.2, "cascade should compress hard: {min_ratio}");
    }

    #[test]
    fn reconstruction_covers_all_points() {
        let mut edge = pipeline(20_000);
        for s in 0..20 {
            edge.ingest(&smooth_segment(s, 1000)).unwrap();
        }
        for (_, rec, orig) in edge.reconstruct_all().unwrap() {
            assert_eq!(rec.len(), 1000);
            let orig = orig.expect("originals kept by default");
            assert_eq!(orig.len(), 1000);
        }
    }

    #[test]
    fn query_protects_segments_from_recoding() {
        // Moderate pressure: segments must be recoded, but the cascade is
        // not forced all the way to every codec's floor (where even hot
        // segments would eventually be hit).
        let mut edge = pipeline(30_000);
        let first = edge.ingest(&smooth_segment(0, 1000)).unwrap().id;
        // Keep querying the first segment while pressure mounts.
        for s in 1..25 {
            edge.query_segment(first).unwrap();
            edge.ingest(&smooth_segment(s, 1000)).unwrap();
        }
        assert!(edge.total_recodes() > 0, "cascade never ran");
        // The queried segment should be no more compressed than average.
        let first_ratio = edge.store().peek(first).unwrap().ratio();
        let avg_ratio: f64 =
            edge.store().iter().map(|s| s.ratio()).sum::<f64>() / edge.store().len() as f64;
        assert!(
            first_ratio >= avg_ratio,
            "hot segment over-compressed: {first_ratio} vs avg {avg_ratio}"
        );
    }

    #[test]
    fn impossible_budget_fails_hard() {
        // Budget smaller than a single compressed segment.
        let mut edge = pipeline(600);
        let err = edge.ingest(&smooth_segment(0, 1000));
        assert!(err.is_err());
    }

    #[test]
    fn config_validation() {
        let mut c = OfflineConfig::new(1000, OptimizationTarget::agg(AggKind::Sum));
        c.recode_threshold = 1.5;
        assert!(OfflineAdaEdge::new(c).is_err());
        let mut c = OfflineConfig::new(1000, OptimizationTarget::agg(AggKind::Sum));
        c.recode_factor = 1.0;
        assert!(OfflineAdaEdge::new(c).is_err());
    }

    #[test]
    fn drain_plan_prefers_fresh_segments_within_budget() {
        let mut edge = pipeline(1 << 20);
        let mut ids = Vec::new();
        for s in 0..10 {
            ids.push(edge.ingest(&smooth_segment(s, 1000)).unwrap().id);
        }
        // Budget exactly covering the three freshest segments (block sizes
        // vary across MAB probes, so compute it from the actual store).
        let budget: usize = ids[7..]
            .iter()
            .map(|&id| edge.store().peek(id).unwrap().size_bytes())
            .sum();
        let plan = edge.drain_plan(budget);
        assert!(!plan.is_empty());
        // Freshest first.
        assert_eq!(plan[0], *ids.last().unwrap());
        let total: usize = plan
            .iter()
            .map(|&id| edge.store().peek(id).unwrap().size_bytes())
            .sum();
        assert!(total <= budget);
    }

    #[test]
    fn drain_removes_segments_and_frees_space() {
        let mut edge = pipeline(1 << 20);
        for s in 0..8 {
            edge.ingest(&smooth_segment(s, 1000)).unwrap();
        }
        let before = edge.store().used_bytes();
        let shipped = edge.drain(before / 2).unwrap();
        assert!(!shipped.is_empty());
        assert!(edge.store().used_bytes() < before);
        assert_eq!(edge.store().len(), 8 - shipped.len());
        // Shipped blocks decode.
        for (_, block) in &shipped {
            assert_eq!(edge.registry().decompress(block).unwrap().len(), 1000);
        }
    }

    #[test]
    fn zero_budget_drains_nothing() {
        let mut edge = pipeline(1 << 20);
        edge.ingest(&smooth_segment(0, 1000)).unwrap();
        assert!(edge.drain_plan(0).is_empty());
        assert!(edge.drain(0).unwrap().is_empty());
    }

    #[test]
    fn lossless_mab_converges_on_sprintz() {
        let mut edge = pipeline(1 << 22);
        for s in 0..60 {
            edge.ingest(&smooth_segment(s, 1000)).unwrap();
        }
        assert_eq!(edge.greedy_lossless_arm(), CodecId::Sprintz);
    }
}
