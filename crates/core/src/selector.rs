//! MAB-backed compression selectors (§IV-C).
//!
//! [`LosslessSelector`] minimizes compressed size (its reward is
//! `1 − ratio`); [`LossySelector`] maximizes the configured optimization
//! target at a required ratio, masking arms whose floor is above the
//! target; [`BandedLossySelector`] keeps one MAB instance per
//! compression-ratio band for offline recoding.

use crate::error::{AdaEdgeError, Result};
use crate::targets::RewardEvaluator;
use crate::uplink::LinkPressure;
use adaedge_bandit::{
    default_band_edges, BandedBandits, EpsilonGreedy, GradientBandit, Policy, StepSize, Ucb,
};
use adaedge_codecs::{CodecError, CodecId, CodecRegistry, CodecScratch, CompressedBlock};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which bandit algorithm drives selection (§III-C discusses the family;
/// the paper's experiments use optimistic ε-greedy, the others are
/// available for ablations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditAlgorithm {
    /// Optimistic ε-greedy (the paper's choice).
    EpsilonGreedy,
    /// UCB1 with exploration constant `c`.
    Ucb {
        /// Confidence-bonus scale (√2 is the classic choice).
        c: f64,
    },
    /// Gradient bandit with learning rate `alpha`.
    Gradient {
        /// Preference learning rate.
        alpha: f64,
    },
}

/// MAB hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SelectorConfig {
    /// The bandit algorithm.
    pub algorithm: BanditAlgorithm,
    /// Exploration rate (paper: 0.01 online, 0.1 offline); ε-greedy only.
    pub epsilon: f64,
    /// Optimistic initial estimate (pushes early exploration); ε-greedy only.
    pub optimistic_init: f64,
    /// Estimate update rule; constant 0.5 for data-shift robustness.
    pub step: StepSize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            algorithm: BanditAlgorithm::EpsilonGreedy,
            epsilon: 0.1,
            optimistic_init: 1.0,
            step: StepSize::SampleAverage,
            seed: 0,
        }
    }
}

impl SelectorConfig {
    /// The paper's online-mode setting (ε = 0.01).
    pub fn online() -> Self {
        Self {
            epsilon: 0.01,
            ..Default::default()
        }
    }

    /// The paper's offline-mode setting (ε = 0.1).
    pub fn offline() -> Self {
        Self {
            epsilon: 0.1,
            ..Default::default()
        }
    }

    /// The paper's data-shift setting (ε = 0.1, constant step 0.5).
    pub fn nonstationary() -> Self {
        Self {
            epsilon: 0.1,
            step: StepSize::Constant(0.5),
            ..Default::default()
        }
    }

    /// UCB variant of the defaults (ablation).
    pub fn ucb(c: f64) -> Self {
        Self {
            algorithm: BanditAlgorithm::Ucb { c },
            ..Default::default()
        }
    }

    fn build_mab(&self, n_arms: usize) -> Box<dyn Policy> {
        match self.algorithm {
            BanditAlgorithm::EpsilonGreedy => Box::new(EpsilonGreedy::with_options(
                n_arms,
                self.epsilon,
                self.optimistic_init,
                self.step,
            )),
            BanditAlgorithm::Ucb { c } => Box::new(Ucb::new(n_arms, c)),
            BanditAlgorithm::Gradient { alpha } => Box::new(GradientBandit::new(n_arms, alpha)),
        }
    }
}

/// The outcome of one selection + compression step.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Which codec was chosen.
    pub codec: CodecId,
    /// The compressed block.
    pub block: CompressedBlock,
    /// Wall-clock seconds compression took.
    pub seconds: f64,
    /// The reward fed back to the MAB.
    pub reward: f64,
}

/// How many *consecutive* failures (codec errors or caught panics) an arm
/// may accumulate before [`LosslessSelector`] quarantines it.
pub const QUARANTINE_AFTER: u32 = 3;

/// Exploration damping applied under [`LinkPressure::Elevated`]: the
/// policy explores at a quarter of its configured rate while the uplink
/// backlog sits between the elevated and critical watermarks.
pub const ELEVATED_EXPLORE_SCALE: f64 = 0.25;

/// One per-segment outcome a batched engine worker accumulates locally
/// (outside the selector lock) and reports through
/// [`LosslessSelector::report_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArmOutcome {
    /// Successful compression achieving this compressed/raw ratio.
    Ratio(f64),
    /// Codec error or caught panic (counts toward quarantine).
    Failure,
}

/// MAB over lossless arms, rewarding small compressed sizes.
pub struct LosslessSelector {
    arms: Vec<CodecId>,
    mab: Box<dyn Policy>,
    rng: SmallRng,
    /// Reused compression arena for [`Self::compress`].
    scratch: CodecScratch,
    /// Consecutive failures per arm; reset by a successful report.
    consecutive_failures: Vec<u32>,
    /// Cumulative failures per arm (never reset; surfaced in reports).
    failure_totals: Vec<u64>,
    /// Arms masked out of selection after repeated failures. Sticky for
    /// the selector's lifetime: a codec that panicked on this workload is
    /// not trusted again mid-run.
    quarantined: Vec<bool>,
    /// Pre-allocated selection mask so the steady-state select path stays
    /// allocation-free even while arms are quarantined.
    mask: Vec<bool>,
    n_quarantined: usize,
}

impl std::fmt::Debug for LosslessSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LosslessSelector")
            .field("arms", &self.arms)
            .finish()
    }
}

impl LosslessSelector {
    /// Create a selector over the given lossless candidate arms.
    pub fn new(arms: Vec<CodecId>, config: SelectorConfig) -> Self {
        assert!(!arms.is_empty(), "need at least one arm");
        assert!(
            arms.iter().all(|a| a.is_lossless()),
            "lossless selector requires lossless arms"
        );
        let mab = config.build_mab(arms.len());
        let n = arms.len();
        Self {
            arms,
            mab,
            rng: SmallRng::seed_from_u64(config.seed),
            scratch: CodecScratch::new(),
            consecutive_failures: vec![0; n],
            failure_totals: vec![0; n],
            quarantined: vec![false; n],
            mask: vec![true; n],
            n_quarantined: 0,
        }
    }

    /// The candidate arms.
    pub fn arms(&self) -> &[CodecId] {
        &self.arms
    }

    /// Current reward estimates, aligned with [`Self::arms`].
    pub fn estimates(&self) -> &[f64] {
        self.mab.estimates()
    }

    /// Per-arm pull counts, aligned with [`Self::arms`].
    pub fn pulls(&self) -> &[u64] {
        self.mab.pulls()
    }

    /// The arm the MAB currently believes best (no exploration).
    pub fn greedy_arm(&self) -> CodecId {
        let est = self.mab.estimates();
        let best = (0..est.len())
            .max_by(|&a, &b| est[a].partial_cmp(&est[b]).expect("finite estimates"))
            .expect("non-empty");
        self.arms[best]
    }

    /// Select an arm without compressing (split API for the multithreaded
    /// engine, which compresses outside the selector lock).
    ///
    /// Quarantined arms are masked out. When *every* arm is quarantined
    /// the selector fails open (no mask) — arms keep being tried and the
    /// engine's per-segment Raw fallback contains the damage.
    pub fn select_arm(&mut self) -> (usize, CodecId) {
        let mask = if self.n_quarantined == 0 || self.n_quarantined == self.arms.len() {
            None
        } else {
            for (m, q) in self.mask.iter_mut().zip(&self.quarantined) {
                *m = !q;
            }
            Some(self.mask.as_slice())
        };
        let arm = self.mab.select(mask, &mut self.rng);
        (arm, self.arms[arm])
    }

    /// Select an arm under a link-pressure bias (§7 degradation path):
    ///
    /// * `Nominal` — identical to [`Self::select_arm`], bit for bit.
    /// * `Elevated` — exploration damped to [`ELEVATED_EXPLORE_SCALE`]
    ///   of its configured rate: keep learning, but stop spending the
    ///   backlogged link on experiments.
    /// * `Critical` — pure exploitation: a deterministic argmax over the
    ///   current estimates (reward is `1 − ratio`, so the argmax *is*
    ///   the best-compressing arm), no RNG draw at all. Quarantined arms
    ///   stay masked; all-quarantined fails open like `select_arm`.
    pub fn select_arm_biased(&mut self, pressure: LinkPressure) -> (usize, CodecId) {
        match pressure {
            LinkPressure::Nominal => self.select_arm(),
            LinkPressure::Elevated => {
                self.mab.set_exploration_scale(ELEVATED_EXPLORE_SCALE);
                let pick = self.select_arm();
                self.mab.set_exploration_scale(1.0);
                pick
            }
            LinkPressure::Critical => {
                let est = self.mab.estimates();
                let fail_open = self.n_quarantined == 0 || self.n_quarantined == self.arms.len();
                let mut best: Option<usize> = None;
                for i in 0..est.len() {
                    if !fail_open && self.quarantined[i] {
                        continue;
                    }
                    match best {
                        None => best = Some(i),
                        Some(b) if est[i] > est[b] => best = Some(i),
                        _ => {}
                    }
                }
                let arm = best.expect("selector has at least one arm");
                (arm, self.arms[arm])
            }
        }
    }

    /// Record a failed compression attempt (codec error or caught panic)
    /// for `arm`. After [`QUARANTINE_AFTER`] consecutive failures the arm
    /// is quarantined and no longer selected. Returns whether the arm is
    /// now quarantined.
    pub fn record_failure(&mut self, arm: usize) -> bool {
        self.failure_totals[arm] += 1;
        self.consecutive_failures[arm] += 1;
        if !self.quarantined[arm] && self.consecutive_failures[arm] >= QUARANTINE_AFTER {
            self.quarantined[arm] = true;
            self.n_quarantined += 1;
        }
        self.quarantined[arm]
    }

    /// Quarantine `arm` outright, regardless of its local failure streak.
    ///
    /// This is the cross-shard propagation path: a replica that learns
    /// (from the shared outcome table) that another shard quarantined the
    /// arm imposes the same verdict locally, without waiting to burn
    /// [`QUARANTINE_AFTER`] of its own segments on a codec already known
    /// bad. Idempotent; the local consecutive-failure streak is left
    /// untouched.
    pub fn quarantine_arm(&mut self, arm: usize) {
        if !self.quarantined[arm] {
            self.quarantined[arm] = true;
            self.n_quarantined += 1;
        }
    }

    /// Fold `pulls` *foreign* pulls of `arm` totalling `reward_sum` into
    /// the underlying policy, as if this selector had observed them via
    /// [`Self::report_ratio`] (see [`adaedge_bandit::Policy::fold`]).
    ///
    /// Foreign failures do **not** feed the local consecutive-failure
    /// streak — failure streaks are a per-shard signal and quarantine
    /// propagates through [`Self::quarantine_arm`] instead, so a codec
    /// that fails only on one shard's data cannot be quarantined by
    /// shards where it works.
    pub fn fold_foreign(&mut self, arm: usize, pulls: u64, reward_sum: f64) {
        self.mab.fold(arm, pulls, reward_sum);
    }

    /// Total pulls the underlying policy has absorbed (local + folded).
    pub fn total_pulls(&self) -> u64 {
        self.mab.total_pulls()
    }

    /// Restore a persisted posterior into this (fresh) selector: per-arm
    /// pull counts and estimates via [`adaedge_bandit::Policy::restore`]
    /// (bit-exact for the estimate-based policies), cumulative failure
    /// totals, and quarantine verdicts from `quarantine_bits` (bit `i` =
    /// arm `i`, the [`crate::shard::SharedOutcomeTable`] convention).
    ///
    /// Consecutive-failure *streaks* are deliberately not part of the
    /// persisted state: they are a live signal about the data a selector
    /// is currently seeing, meaningless after an eviction gap.
    pub fn restore_posterior(
        &mut self,
        pulls: &[u64],
        estimates: &[f64],
        failure_totals: &[u64],
        quarantine_bits: u64,
    ) {
        assert_eq!(pulls.len(), self.arms.len(), "posterior/roster mismatch");
        assert_eq!(estimates.len(), self.arms.len());
        assert_eq!(failure_totals.len(), self.arms.len());
        for arm in 0..self.arms.len() {
            self.mab.restore(arm, pulls[arm], estimates[arm]);
            self.failure_totals[arm] = failure_totals[arm];
            if quarantine_bits & (1u64 << arm) != 0 {
                self.quarantine_arm(arm);
            }
        }
    }

    /// Quarantine verdicts as a bitmask (bit `i` = arm `i`), the form the
    /// persist layer and the shared outcome table both use.
    pub fn quarantine_bits(&self) -> u64 {
        self.quarantined
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &q)| acc | ((q as u64) << i))
    }

    /// Whether `arm` is currently quarantined.
    pub fn is_quarantined(&self, arm: usize) -> bool {
        self.quarantined[arm]
    }

    /// The currently quarantined arms (empty in a healthy run).
    pub fn quarantined_arms(&self) -> Vec<CodecId> {
        self.arms
            .iter()
            .zip(&self.quarantined)
            .filter_map(|(&a, &q)| q.then_some(a))
            .collect()
    }

    /// Cumulative per-arm failure counts, aligned with [`Self::arms`].
    pub fn failure_totals(&self) -> &[u64] {
        &self.failure_totals
    }

    /// Feed the size reward for a block produced by `arm` back to the MAB.
    pub fn report_block(&mut self, arm: usize, block: &CompressedBlock) -> f64 {
        self.report_ratio(arm, block.ratio())
    }

    /// Feed the size reward for a compression of `arm` that achieved
    /// `ratio` back to the MAB (borrow-free variant of
    /// [`Self::report_block`] for callers holding a scratch-backed block).
    pub fn report_ratio(&mut self, arm: usize, ratio: f64) -> f64 {
        // A successful compression clears the arm's consecutive-failure
        // streak (quarantine itself is sticky).
        self.consecutive_failures[arm] = 0;
        // Smaller is better; ratios above 1 (failed compression) floor at 0.
        let reward = (1.0 - ratio).clamp(0.0, 1.0);
        self.mab.update(arm, reward);
        reward
    }

    /// Report a batch of outcomes for `arm` in order, exactly as if each
    /// had been fed through [`Self::report_ratio`] / [`Self::record_failure`]
    /// individually — the estimates, pull counts, failure streaks and
    /// quarantine state end up bit-identical to the sequential calls.
    ///
    /// This is the batched engine's reward path: a worker holds `arm`
    /// sticky across K segments, accumulates outcomes locally, and pays one
    /// lock acquisition here instead of one per segment. Returns the summed
    /// reward credited to the arm.
    pub fn report_batch(&mut self, arm: usize, outcomes: &[ArmOutcome]) -> f64 {
        let mut total = 0.0;
        for &outcome in outcomes {
            match outcome {
                ArmOutcome::Ratio(ratio) => total += self.report_ratio(arm, ratio),
                ArmOutcome::Failure => {
                    self.record_failure(arm);
                }
            }
        }
        total
    }

    /// Select an arm, compress, feed the size reward back.
    pub fn compress(&mut self, reg: &CodecRegistry, data: &[f64]) -> Result<Selection> {
        let (arm, codec) = self.select_arm();
        let t0 = Instant::now();
        let block = match reg.compress_into(codec, data, &mut self.scratch) {
            Ok(block_ref) => block_ref.to_block(),
            Err(e) => {
                self.record_failure(arm);
                return Err(e.into());
            }
        };
        let seconds = t0.elapsed().as_secs_f64();
        let reward = self.report_block(arm, &block);
        Ok(Selection {
            codec,
            block,
            seconds,
            reward,
        })
    }
}

/// Feasibility mask for lossy arms at a target ratio.
fn feasibility_mask(
    reg: &CodecRegistry,
    arms: &[CodecId],
    n_points: usize,
    ratio: f64,
) -> Vec<bool> {
    arms.iter()
        .map(|&a| {
            reg.get_lossy(a)
                .map(|c| c.min_ratio(n_points) <= ratio)
                .unwrap_or(false)
        })
        .collect()
}

/// Run one lossy compression attempt and score it. The reconstruction used
/// for scoring goes through `scratch`/`buf` so repeated attempts reuse the
/// same arena.
#[allow(clippy::too_many_arguments)]
fn lossy_attempt(
    reg: &CodecRegistry,
    codec: CodecId,
    data: &[f64],
    ratio: f64,
    evaluator: &mut RewardEvaluator,
    scratch: &mut CodecScratch,
    buf: &mut Vec<f64>,
) -> std::result::Result<(CompressedBlock, f64, f64), CodecError> {
    let lossy = reg.get_lossy(codec).expect("arm must be lossy");
    let t0 = Instant::now();
    let block = lossy.compress_to_ratio(data, ratio)?;
    let seconds = t0.elapsed().as_secs_f64();
    reg.decompress_into(&block, scratch, buf)?;
    let reward = evaluator.evaluate(data, buf, seconds);
    Ok((block, seconds, reward))
}

/// MAB over lossy arms at a single operating ratio (online mode).
pub struct LossySelector {
    arms: Vec<CodecId>,
    mab: Box<dyn Policy>,
    evaluator: RewardEvaluator,
    rng: SmallRng,
    /// Reused decompression arena for reward scoring.
    scratch: CodecScratch,
    /// Reused reconstruction buffer for reward scoring.
    buf: Vec<f64>,
}

impl std::fmt::Debug for LossySelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LossySelector")
            .field("arms", &self.arms)
            .finish()
    }
}

impl LossySelector {
    /// Create a selector over lossy candidate arms with the given target
    /// evaluator.
    pub fn new(arms: Vec<CodecId>, config: SelectorConfig, evaluator: RewardEvaluator) -> Self {
        assert!(!arms.is_empty(), "need at least one arm");
        let mab = config.build_mab(arms.len());
        Self {
            arms,
            mab,
            evaluator,
            rng: SmallRng::seed_from_u64(config.seed.wrapping_add(1)),
            scratch: CodecScratch::new(),
            buf: Vec::new(),
        }
    }

    /// The candidate arms.
    pub fn arms(&self) -> &[CodecId] {
        &self.arms
    }

    /// Current reward estimates, aligned with [`Self::arms`].
    pub fn estimates(&self) -> &[f64] {
        self.mab.estimates()
    }

    /// Per-arm pull counts, aligned with [`Self::arms`].
    pub fn pulls(&self) -> &[u64] {
        self.mab.pulls()
    }

    /// Select a feasible arm, compress to `ratio`, evaluate the target and
    /// feed the reward back. Infeasible selections (data-dependent floors)
    /// are penalized and retried on other arms.
    pub fn compress_to_ratio(
        &mut self,
        reg: &CodecRegistry,
        data: &[f64],
        ratio: f64,
    ) -> Result<Selection> {
        let mut mask = feasibility_mask(reg, &self.arms, data.len(), ratio);
        for _ in 0..self.arms.len() {
            if mask.iter().all(|&m| !m) {
                return Err(AdaEdgeError::NoFeasibleArm {
                    target_ratio: ratio,
                });
            }
            let arm = self.mab.select(Some(&mask), &mut self.rng);
            match lossy_attempt(
                reg,
                self.arms[arm],
                data,
                ratio,
                &mut self.evaluator,
                &mut self.scratch,
                &mut self.buf,
            ) {
                Ok((block, seconds, reward)) => {
                    self.mab.update(arm, reward);
                    return Ok(Selection {
                        codec: self.arms[arm],
                        block,
                        seconds,
                        reward,
                    });
                }
                Err(CodecError::RatioUnreachable { .. }) => {
                    // Data-dependent floor: penalize and exclude this round.
                    self.mab.update(arm, 0.0);
                    mask[arm] = false;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(AdaEdgeError::NoFeasibleArm {
            target_ratio: ratio,
        })
    }

    /// Access the evaluator (e.g. to inspect the model).
    pub fn evaluator(&self) -> &RewardEvaluator {
        &self.evaluator
    }
}

/// Lossy selection with one MAB instance per ratio band (§IV-C2, offline).
pub struct BandedLossySelector {
    arms: Vec<CodecId>,
    bands: BandedBandits<Box<dyn Policy>>,
    evaluator: RewardEvaluator,
    rng: SmallRng,
    /// Reused decompression arena for reward scoring.
    scratch: CodecScratch,
    /// Reused reconstruction buffer for reward scoring.
    buf: Vec<f64>,
}

impl std::fmt::Debug for BandedLossySelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandedLossySelector")
            .field("arms", &self.arms)
            .field("bands", &self.bands)
            .finish()
    }
}

impl BandedLossySelector {
    /// Create a banded selector with the default halving band edges.
    pub fn new(arms: Vec<CodecId>, config: SelectorConfig, evaluator: RewardEvaluator) -> Self {
        Self::with_edges(arms, config, evaluator, default_band_edges())
    }

    /// Create a banded selector with explicit band edges.
    pub fn with_edges(
        arms: Vec<CodecId>,
        config: SelectorConfig,
        evaluator: RewardEvaluator,
        edges: Vec<f64>,
    ) -> Self {
        assert!(!arms.is_empty(), "need at least one arm");
        let n = arms.len();
        let bands = BandedBandits::new(edges, move || config.build_mab(n));
        Self {
            arms,
            bands,
            evaluator,
            rng: SmallRng::seed_from_u64(config.seed.wrapping_add(2)),
            scratch: CodecScratch::new(),
            buf: Vec::new(),
        }
    }

    /// The candidate arms.
    pub fn arms(&self) -> &[CodecId] {
        &self.arms
    }

    /// How many band instances have been spawned so far.
    pub fn instantiated_bands(&self) -> usize {
        self.bands.instantiated()
    }

    /// Compress fresh points (or re-compress a decoded segment) to `ratio`
    /// using the band owning that ratio.
    pub fn compress_to_ratio(
        &mut self,
        reg: &CodecRegistry,
        data: &[f64],
        ratio: f64,
    ) -> Result<Selection> {
        let mut mask = feasibility_mask(reg, &self.arms, data.len(), ratio);
        for _ in 0..self.arms.len() {
            if mask.iter().all(|&m| !m) {
                return Err(AdaEdgeError::NoFeasibleArm {
                    target_ratio: ratio,
                });
            }
            let arm = self.bands.select(ratio, Some(&mask), &mut self.rng);
            match lossy_attempt(
                reg,
                self.arms[arm],
                data,
                ratio,
                &mut self.evaluator,
                &mut self.scratch,
                &mut self.buf,
            ) {
                Ok((block, seconds, reward)) => {
                    self.bands.update(ratio, arm, reward);
                    return Ok(Selection {
                        codec: self.arms[arm],
                        block,
                        seconds,
                        reward,
                    });
                }
                Err(CodecError::RatioUnreachable { .. }) => {
                    self.bands.update(ratio, arm, 0.0);
                    mask[arm] = false;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(AdaEdgeError::NoFeasibleArm {
            target_ratio: ratio,
        })
    }

    /// Report a batch of `(arm, reward)` updates into the band owning
    /// `ratio`, in order, exactly as K sequential `update` calls.
    /// [`Self::recode`] accumulates its per-attempt scores locally and
    /// flushes them through here, so a recode costs one reward-reporting
    /// pass however many arms it probed; external drivers that score
    /// attempts outside the selector lock can use it the same way.
    pub fn report_batch(&mut self, ratio: f64, updates: &[(usize, f64)]) {
        for &(arm, reward) in updates {
            self.bands.update(ratio, arm, reward);
        }
    }

    /// Recode an existing block to a tighter ratio. Same-codec blocks use
    /// virtual decompression; otherwise the block is decoded once and
    /// re-compressed with the band's selected arm.
    ///
    /// Recoding is destructive, so exploration is *safe*: a non-greedy
    /// pull is still compressed and scored (the MAB learns from it), but
    /// when its measured reward falls materially below the band's greedy
    /// estimate the greedy arm's result is committed instead. Exploration
    /// then costs compute, not permanent accuracy — the paper frames
    /// exploration overhead as recoverable (§V-C), which a committed bad
    /// lossy block would not be.
    ///
    /// Per-attempt rewards are accumulated locally and flushed through
    /// [`Self::report_batch`] on exit (identical MAB state: every deferred
    /// update is either followed by an immediate return or belongs to an
    /// arm the retry mask already excludes from later reads).
    pub fn recode(
        &mut self,
        reg: &CodecRegistry,
        block: &CompressedBlock,
        original_hint: Option<&[f64]>,
        ratio: f64,
    ) -> Result<Selection> {
        let mut updates: Vec<(usize, f64)> = Vec::new();
        let result = self.recode_inner(reg, block, original_hint, ratio, &mut updates);
        self.report_batch(ratio, &updates);
        result
    }

    /// The recode retry loop, pushing `(arm, reward)` scores into
    /// `updates` instead of touching the bands directly.
    fn recode_inner(
        &mut self,
        reg: &CodecRegistry,
        block: &CompressedBlock,
        original_hint: Option<&[f64]>,
        ratio: f64,
        updates: &mut Vec<(usize, f64)>,
    ) -> Result<Selection> {
        /// Reward shortfall (vs the greedy estimate) beyond which an
        /// explored recode result is not committed.
        const SAFE_MARGIN: f64 = 0.005;

        let n = block.n_points as usize;
        let mut mask = feasibility_mask(reg, &self.arms, n, ratio);
        let mut decoded: Option<Vec<f64>> = None;

        // One recode attempt with a specific arm: returns the new block,
        // its wall time and its measured reward.
        macro_rules! attempt_arm {
            ($arm:expr) => {{
                let codec = self.arms[$arm];
                let t0 = Instant::now();
                let same_family = codec == block.codec
                    || (codec == CodecId::BuffLossy && block.codec == CodecId::Buff);
                let attempt: std::result::Result<CompressedBlock, CodecError> = if same_family {
                    reg.recode(block, ratio)
                } else {
                    if decoded.is_none() {
                        decoded = Some(reg.decompress(block)?);
                    }
                    reg.get_lossy(codec)
                        .expect("arm must be lossy")
                        .compress_to_ratio(decoded.as_ref().expect("just decoded"), ratio)
                };
                match attempt {
                    Ok(new_block) => {
                        let seconds = t0.elapsed().as_secs_f64();
                        reg.decompress_into(&new_block, &mut self.scratch, &mut self.buf)?;
                        // Score against the raw points when the caller
                        // still has them; else the pre-recode decode.
                        let reference: &[f64] = match original_hint {
                            Some(orig) => orig,
                            None => {
                                if decoded.is_none() {
                                    decoded = Some(reg.decompress(block)?);
                                }
                                decoded.as_ref().expect("decoded above")
                            }
                        };
                        let reward = self.evaluator.evaluate(reference, &self.buf, seconds);
                        updates.push(($arm, reward));
                        Ok(Some((new_block, seconds, reward)))
                    }
                    Err(CodecError::RatioUnreachable { .. })
                    | Err(CodecError::RecodeUnsupported(_)) => {
                        updates.push(($arm, 0.0));
                        Ok(None)
                    }
                    Err(e) => Err(AdaEdgeError::from(e)),
                }
            }};
        }

        for _ in 0..self.arms.len() {
            if mask.iter().all(|&m| !m) {
                return Err(AdaEdgeError::NoFeasibleArm {
                    target_ratio: ratio,
                });
            }
            let (greedy_arm, greedy_est) = self.bands.greedy(ratio, Some(&mask));
            let arm = self.bands.select(ratio, Some(&mask), &mut self.rng);
            match attempt_arm!(arm)? {
                Some((new_block, seconds, reward)) => {
                    if arm != greedy_arm && reward + SAFE_MARGIN < greedy_est {
                        // The probe was informative but poor: also run the
                        // greedy arm and commit whichever *measured* better
                        // (the greedy estimate itself may rest on a lucky
                        // early pull).
                        if let Some((g_block, g_seconds, g_reward)) = attempt_arm!(greedy_arm)? {
                            if g_reward >= reward {
                                return Ok(Selection {
                                    codec: self.arms[greedy_arm],
                                    block: g_block,
                                    seconds: seconds + g_seconds,
                                    reward: g_reward,
                                });
                            }
                        }
                    }
                    return Ok(Selection {
                        codec: self.arms[arm],
                        block: new_block,
                        seconds,
                        reward,
                    });
                }
                None => {
                    mask[arm] = false;
                }
            }
        }
        Err(AdaEdgeError::NoFeasibleArm {
            target_ratio: ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggKind;
    use crate::targets::OptimizationTarget;

    fn reg() -> CodecRegistry {
        CodecRegistry::new(4)
    }

    fn smooth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 * 0.01).sin() * 3.0 * 1e4).round() / 1e4)
            .collect()
    }

    #[test]
    fn lossless_selector_learns_small_codec() {
        let reg = reg();
        let mut sel = LosslessSelector::new(
            CodecRegistry::lossless_candidates(),
            SelectorConfig {
                epsilon: 0.1,
                seed: 3,
                ..Default::default()
            },
        );
        let data = smooth(1024);
        for _ in 0..60 {
            sel.compress(&reg, &data).unwrap();
        }
        // Sprintz should win on smooth 4-digit data.
        assert_eq!(sel.greedy_arm(), CodecId::Sprintz);
    }

    #[test]
    fn report_batch_is_bit_identical_to_sequential_reports() {
        let config = SelectorConfig {
            epsilon: 0.1,
            seed: 11,
            ..Default::default()
        };
        let arms = CodecRegistry::lossless_candidates();
        let mut seq = LosslessSelector::new(arms.clone(), config);
        let mut batched = LosslessSelector::new(arms, config);
        // Mixed outcomes, including enough failures to trip quarantine on
        // one arm, split across uneven batch sizes.
        let outcomes = [
            ArmOutcome::Ratio(0.4),
            ArmOutcome::Failure,
            ArmOutcome::Ratio(0.35),
            ArmOutcome::Failure,
            ArmOutcome::Failure,
            ArmOutcome::Failure,
            ArmOutcome::Ratio(0.9),
        ];
        for (i, chunk) in outcomes.chunks(3).enumerate() {
            let arm = i % 2;
            for &o in chunk {
                match o {
                    ArmOutcome::Ratio(r) => {
                        seq.report_ratio(arm, r);
                    }
                    ArmOutcome::Failure => {
                        seq.record_failure(arm);
                    }
                }
            }
            batched.report_batch(arm, chunk);
        }
        assert_eq!(seq.estimates(), batched.estimates());
        assert_eq!(seq.pulls(), batched.pulls());
        assert_eq!(seq.failure_totals(), batched.failure_totals());
        assert_eq!(seq.quarantined_arms(), batched.quarantined_arms());
        // Both selectors draw from identically-advanced RNGs afterwards.
        assert_eq!(seq.select_arm(), batched.select_arm());
    }

    #[test]
    fn banded_report_batch_matches_sequential_updates() {
        let evaluator = || RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let config = SelectorConfig::offline();
        let arms = CodecRegistry::lossy_candidates();
        let mut seq = BandedLossySelector::new(arms.clone(), config, evaluator());
        let mut batched = BandedLossySelector::new(arms, config, evaluator());
        let updates = [(0usize, 0.8), (1, 0.3), (0, 0.55), (2, 0.0)];
        for &(arm, reward) in &updates {
            seq.bands.update(0.25, arm, reward);
        }
        batched.report_batch(0.25, &updates);
        let mask = vec![true; seq.arms.len()];
        assert_eq!(
            seq.bands.greedy(0.25, Some(&mask)),
            batched.bands.greedy(0.25, Some(&mask))
        );
        assert_eq!(seq.instantiated_bands(), batched.instantiated_bands());
    }

    #[test]
    fn lossy_selector_respects_target_ratio() {
        let reg = reg();
        let evaluator = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let mut sel = LossySelector::new(
            CodecRegistry::lossy_candidates(),
            SelectorConfig::online(),
            evaluator,
        );
        let data = smooth(1000);
        for _ in 0..20 {
            let s = sel.compress_to_ratio(&reg, &data, 0.1).unwrap();
            assert!(
                s.block.ratio() <= 0.1 + 1e-9,
                "{}: {}",
                s.codec,
                s.block.ratio()
            );
        }
    }

    #[test]
    fn lossy_selector_learns_paa_or_fft_for_sum() {
        let reg = reg();
        let evaluator = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        // BUFF-lossy is infeasible at ratio 0.05 (its floor is ≈0.126), so
        // its optimistic initial estimate would never be corrected; restrict
        // the arms to the feasible set for a clean argmax below.
        let mut sel = LossySelector::new(
            vec![CodecId::Paa, CodecId::Pla, CodecId::Fft, CodecId::RrdSample],
            SelectorConfig {
                epsilon: 0.05,
                seed: 1,
                ..Default::default()
            },
            evaluator,
        );
        let data = smooth(1000);
        for _ in 0..80 {
            sel.compress_to_ratio(&reg, &data, 0.05).unwrap();
        }
        let est = sel.estimates();
        let arms = sel.arms().to_vec();
        let best = arms[(0..est.len())
            .max_by(|&a, &b| est[a].partial_cmp(&est[b]).unwrap())
            .unwrap()];
        assert!(
            best == CodecId::Paa || best == CodecId::Fft,
            "sum target should favour PAA/FFT, got {best} (estimates {est:?})"
        );
    }

    #[test]
    fn buff_lossy_masked_below_floor() {
        let reg = reg();
        let mask = feasibility_mask(&reg, &CodecRegistry::lossy_candidates(), 1000, 0.05);
        // PAA, PLA, FFT, BUFF-lossy, RRD — BUFF-lossy (index 3) infeasible.
        assert_eq!(mask, vec![true, true, true, false, true]);
    }

    #[test]
    fn no_feasible_arm_error() {
        let reg = reg();
        let evaluator = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let mut sel = LossySelector::new(
            vec![CodecId::BuffLossy],
            SelectorConfig::online(),
            evaluator,
        );
        let err = sel
            .compress_to_ratio(&reg, &smooth(1000), 0.05)
            .unwrap_err();
        assert!(matches!(err, AdaEdgeError::NoFeasibleArm { .. }));
    }

    #[test]
    fn banded_selector_recodes_with_virtual_decompression() {
        let reg = reg();
        let evaluator = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let mut sel = BandedLossySelector::new(
            vec![CodecId::Paa], // single arm: recode must go PAA→PAA
            SelectorConfig::offline(),
            evaluator,
        );
        let data = smooth(1000);
        let first = sel.compress_to_ratio(&reg, &data, 0.4).unwrap();
        let recoded = sel.recode(&reg, &first.block, Some(&data), 0.1).unwrap();
        assert_eq!(recoded.codec, CodecId::Paa);
        assert!(recoded.block.ratio() <= 0.1 + 1e-9);
    }

    #[test]
    fn banded_selector_uses_separate_bands() {
        let reg = reg();
        let evaluator = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let mut sel = BandedLossySelector::new(
            CodecRegistry::lossy_candidates(),
            SelectorConfig::offline(),
            evaluator,
        );
        let data = smooth(1000);
        sel.compress_to_ratio(&reg, &data, 0.4).unwrap();
        assert_eq!(sel.instantiated_bands(), 1);
        sel.compress_to_ratio(&reg, &data, 0.05).unwrap();
        assert_eq!(sel.instantiated_bands(), 2);
    }

    #[test]
    #[should_panic(expected = "lossless arms")]
    fn lossless_selector_rejects_lossy_arms() {
        LosslessSelector::new(vec![CodecId::Paa], SelectorConfig::default());
    }

    #[test]
    fn nominal_bias_is_bit_identical_to_select_arm() {
        let config = SelectorConfig {
            epsilon: 0.3,
            seed: 17,
            ..Default::default()
        };
        let arms = CodecRegistry::lossless_candidates();
        let mut plain = LosslessSelector::new(arms.clone(), config);
        let mut biased = LosslessSelector::new(arms, config);
        for i in 0..300 {
            let a = plain.select_arm();
            let b = biased.select_arm_biased(LinkPressure::Nominal);
            assert_eq!(a, b, "diverged at step {i}");
            let ratio = 0.3 + (a.0 as f64) * 0.1;
            plain.report_ratio(a.0, ratio);
            biased.report_ratio(b.0, ratio);
        }
    }

    #[test]
    fn critical_bias_is_deterministic_argmax() {
        let mut sel = LosslessSelector::new(
            CodecRegistry::lossless_candidates(),
            SelectorConfig {
                epsilon: 1.0, // maximally exploratory when unbiased
                seed: 5,
                ..Default::default()
            },
        );
        // Teach it: arm 1 compresses best (lowest ratio → highest reward).
        for (arm, ratio) in [(0, 0.8), (1, 0.2), (2, 0.7), (3, 0.9), (4, 0.6), (5, 0.75)] {
            sel.report_ratio(arm, ratio);
        }
        for _ in 0..50 {
            let (arm, _) = sel.select_arm_biased(LinkPressure::Critical);
            assert_eq!(arm, 1, "critical pressure must exploit, never explore");
        }
        // Critical selection draws no RNG: the next nominal pick matches a
        // twin that never went critical.
        let mut twin = LosslessSelector::new(
            CodecRegistry::lossless_candidates(),
            SelectorConfig {
                epsilon: 1.0,
                seed: 5,
                ..Default::default()
            },
        );
        for (arm, ratio) in [(0, 0.8), (1, 0.2), (2, 0.7), (3, 0.9), (4, 0.6), (5, 0.75)] {
            twin.report_ratio(arm, ratio);
        }
        assert_eq!(
            sel.select_arm_biased(LinkPressure::Nominal),
            twin.select_arm()
        );
    }

    #[test]
    fn critical_bias_respects_quarantine() {
        let mut sel = LosslessSelector::new(
            CodecRegistry::lossless_candidates(),
            SelectorConfig::default(),
        );
        for (arm, ratio) in [(0, 0.8), (1, 0.2), (2, 0.7), (3, 0.9), (4, 0.6), (5, 0.75)] {
            sel.report_ratio(arm, ratio);
        }
        sel.quarantine_arm(1); // the best arm goes toxic
        let (arm, _) = sel.select_arm_biased(LinkPressure::Critical);
        assert_eq!(arm, 4, "next-best non-quarantined arm (ratio 0.6)");
    }

    #[test]
    fn elevated_bias_explores_less_than_nominal() {
        // With ε=1.0 a nominal selector explores every draw; elevated
        // damping to 0.25 must produce mostly-greedy picks.
        let run = |pressure: LinkPressure| -> usize {
            let mut sel = LosslessSelector::new(
                CodecRegistry::lossless_candidates(),
                SelectorConfig {
                    epsilon: 1.0,
                    seed: 23,
                    ..Default::default()
                },
            );
            for (arm, ratio) in [(0, 0.8), (1, 0.2), (2, 0.7), (3, 0.9), (4, 0.6), (5, 0.75)] {
                sel.report_ratio(arm, ratio);
            }
            (0..400)
                .filter(|_| sel.select_arm_biased(pressure).0 != 1)
                .count()
        };
        let nominal_explores = run(LinkPressure::Nominal);
        let elevated_explores = run(LinkPressure::Elevated);
        assert!(
            elevated_explores * 2 < nominal_explores,
            "elevated {elevated_explores} vs nominal {nominal_explores}"
        );
        assert!(elevated_explores > 0, "elevated still explores a little");
    }
}
