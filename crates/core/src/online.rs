//! Online mode (§IV-B1, §IV-C1): a continuously connected edge hub that
//! must fit the compressed stream through a bandwidth-constrained link.
//!
//! The target ratio `R = B/(64·I)` follows from the constraints. Lossless
//! selection (size-rewarded MAB) runs first; once it becomes apparent that
//! no lossless arm reaches `R`, a dedicated lossy MAB is spawned whose
//! reward is the workload target, with every lossy arm tuned to `R`.

use crate::constraints::Constraints;
use crate::error::{AdaEdgeError, Result};
use crate::selector::{LosslessSelector, LossySelector, Selection, SelectorConfig};
use crate::targets::{OptimizationTarget, RewardEvaluator};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_ml::Model;

/// Which path produced a segment's block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// A lossless arm met the target ratio.
    Lossless,
    /// Lossy selection was required.
    Lossy,
}

/// Online pipeline configuration.
pub struct OnlineConfig {
    /// System constraints; must include a bandwidth (use
    /// [`Constraints::online`]).
    pub constraints: Constraints,
    /// Lossless candidate arms.
    pub lossless_arms: Vec<CodecId>,
    /// Lossy candidate arms.
    pub lossy_arms: Vec<CodecId>,
    /// MAB hyper-parameters (paper: ε = 0.01 online).
    pub selector: SelectorConfig,
    /// The workload target optimized when lossy compression is needed.
    pub target: OptimizationTarget,
    /// Frozen model for ML targets.
    pub model: Option<Model>,
    /// Dataset instance length (rows cut from segments for ML scoring).
    pub instance_len: usize,
    /// Dataset decimal precision (configures quantizing codecs).
    pub precision: u8,
}

impl OnlineConfig {
    /// Reasonable defaults around the given constraints and target.
    pub fn new(constraints: Constraints, target: OptimizationTarget) -> Self {
        Self {
            constraints,
            lossless_arms: CodecRegistry::lossless_candidates(),
            lossy_arms: CodecRegistry::lossy_candidates(),
            selector: SelectorConfig::online(),
            target,
            model: None,
            instance_len: 0,
            precision: 4,
        }
    }
}

/// Per-segment outcome.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The selection (codec, block, timing, reward).
    pub selection: Selection,
    /// Lossless or lossy path.
    pub path: Path,
}

/// Running totals for the online pipeline.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    /// Segments processed.
    pub segments: u64,
    /// Segments shipped lossless.
    pub lossless_segments: u64,
    /// Segments shipped lossy.
    pub lossy_segments: u64,
    /// Raw bytes ingested.
    pub bytes_in: u64,
    /// Compressed bytes egressed.
    pub bytes_out: u64,
}

/// The online AdaEdge pipeline.
pub struct OnlineAdaEdge {
    reg: CodecRegistry,
    target_ratio: f64,
    lossless: LosslessSelector,
    /// The dedicated lossy MAB instance of §IV-C1. Constructed up front but
    /// left untouched until lossless selection proves inadequate.
    lossy: LossySelector,
    /// Consecutive lossless misses before the pipeline commits to lossy.
    lossless_miss_budget: u32,
    misses: u32,
    committed_lossy: bool,
    stats: OnlineStats,
}

impl std::fmt::Debug for OnlineAdaEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineAdaEdge")
            .field("target_ratio", &self.target_ratio)
            .field("committed_lossy", &self.committed_lossy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl OnlineAdaEdge {
    /// Build the pipeline. Fails when the constraints carry no bandwidth.
    pub fn new(config: OnlineConfig) -> Result<Self> {
        let target_ratio = config
            .constraints
            .target_ratio()
            .ok_or(AdaEdgeError::Config("online mode requires a bandwidth"))?;
        let miss_budget = (config.lossless_arms.len() as u32) * 2;
        let evaluator = RewardEvaluator::new(config.target, config.model, config.instance_len);
        Ok(Self {
            reg: CodecRegistry::new(config.precision),
            target_ratio,
            lossless: LosslessSelector::new(config.lossless_arms, config.selector),
            lossy: LossySelector::new(config.lossy_arms, config.selector, evaluator),
            lossless_miss_budget: miss_budget,
            misses: 0,
            committed_lossy: false,
            stats: OnlineStats::default(),
        })
    }

    /// The derived target compression ratio `R`.
    pub fn target_ratio(&self) -> f64 {
        self.target_ratio
    }

    /// Whether the pipeline has committed to the lossy path.
    pub fn is_lossy_mode(&self) -> bool {
        self.committed_lossy
    }

    /// Running statistics.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The codec registry in use.
    pub fn registry(&self) -> &CodecRegistry {
        &self.reg
    }

    /// Process one ingested segment, producing the block that would be
    /// shipped over the link.
    pub fn process_segment(&mut self, data: &[f64]) -> Result<OnlineOutcome> {
        self.stats.segments += 1;
        self.stats.bytes_in += (data.len() * 8) as u64;
        if !self.committed_lossy {
            let sel = self.lossless.compress(&self.reg, data)?;
            if sel.block.ratio() <= self.target_ratio {
                self.misses = 0;
                self.stats.lossless_segments += 1;
                self.stats.bytes_out += sel.block.compressed_bytes() as u64;
                return Ok(OnlineOutcome {
                    selection: sel,
                    path: Path::Lossless,
                });
            }
            // The arm overshot the link budget: it becomes apparent that R
            // is out of lossless reach once every arm has had its chance.
            self.misses += 1;
            if self.misses >= self.lossless_miss_budget {
                self.committed_lossy = true;
            }
        }
        let sel = self
            .lossy
            .compress_to_ratio(&self.reg, data, self.target_ratio)?;
        self.stats.lossy_segments += 1;
        self.stats.bytes_out += sel.block.compressed_bytes() as u64;
        Ok(OnlineOutcome {
            selection: sel,
            path: Path::Lossy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggKind;

    fn smooth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 * 0.01).sin() * 3.0 * 1e4).round() / 1e4)
            .collect()
    }

    fn config(ratio: f64) -> OnlineConfig {
        // I = 1000 pts/s; choose B to produce the wanted ratio.
        let constraints = Constraints::online(1000.0, ratio * 64.0 * 1000.0, 1000);
        OnlineConfig::new(constraints, OptimizationTarget::agg(AggKind::Sum))
    }

    #[test]
    fn generous_ratio_stays_lossless() {
        let mut edge = OnlineAdaEdge::new(config(0.9)).unwrap();
        let data = smooth(1000);
        // Early probes of weak arms (snappy/gorilla on noisy mantissas) may
        // overshoot 0.9 and fall back to lossy for that segment; once the
        // MAB warms up, everything ships lossless.
        for _ in 0..15 {
            edge.process_segment(&data).unwrap();
        }
        assert!(!edge.is_lossy_mode());
        for _ in 0..15 {
            let out = edge.process_segment(&data).unwrap();
            assert_eq!(out.path, Path::Lossless);
            assert!(out.selection.block.ratio() <= 0.9);
        }
    }

    #[test]
    fn harsh_ratio_falls_back_to_lossy() {
        let mut edge = OnlineAdaEdge::new(config(0.05)).unwrap();
        let data = smooth(1000);
        let mut saw_lossy = false;
        for _ in 0..40 {
            let out = edge.process_segment(&data).unwrap();
            if out.path == Path::Lossy {
                saw_lossy = true;
                assert!(out.selection.block.ratio() <= 0.05 + 1e-9);
            }
        }
        assert!(saw_lossy);
        assert!(edge.is_lossy_mode());
        // Once committed, everything goes lossy.
        let out = edge.process_segment(&data).unwrap();
        assert_eq!(out.path, Path::Lossy);
    }

    #[test]
    fn moderate_ratio_uses_best_lossless() {
        // Sprintz reaches ~0.2 on smooth 4-digit data, so R = 0.35 is
        // losslessly feasible and loss stays zero.
        let mut edge = OnlineAdaEdge::new(config(0.35)).unwrap();
        let data = smooth(1000);
        let mut lossless_seen = 0;
        for _ in 0..50 {
            if edge.process_segment(&data).unwrap().path == Path::Lossless {
                lossless_seen += 1;
            }
        }
        assert!(lossless_seen > 30, "lossless {lossless_seen}/50");
        assert!(!edge.is_lossy_mode());
    }

    #[test]
    fn egress_respects_bandwidth_on_average() {
        let mut edge = OnlineAdaEdge::new(config(0.1)).unwrap();
        let data = smooth(1000);
        for _ in 0..30 {
            edge.process_segment(&data).unwrap();
        }
        let stats = edge.stats();
        // Post-commitment, bytes out per segment ≤ R × bytes in (with the
        // warm-up lossless attempts excluded, the totals stay close).
        let overall = stats.bytes_out as f64 / stats.bytes_in as f64;
        assert!(overall < 0.2, "overall egress ratio {overall}");
    }

    #[test]
    fn offline_constraints_rejected() {
        let constraints = Constraints::offline(1000.0, 1 << 20, 1000);
        let err = OnlineAdaEdge::new(OnlineConfig::new(
            constraints,
            OptimizationTarget::agg(AggKind::Sum),
        ))
        .unwrap_err();
        assert!(matches!(err, AdaEdgeError::Config(_)));
    }
}
