//! Aggregation queries over raw or reconstructed segments (§IV-D2),
//! including the compressed-domain fast path.

use adaedge_codecs::{agg_with_fallback, AggOp, CodecRegistry, CompressedBlock};
use serde::{Deserialize, Serialize};

/// Supported aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    /// Sum of all points.
    Sum,
    /// Maximum point.
    Max,
    /// Minimum point.
    Min,
    /// Arithmetic mean.
    Avg,
}

impl AggKind {
    /// Evaluate the aggregate over a slice.
    pub fn eval(self, data: &[f64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        match self {
            AggKind::Sum => data.iter().sum(),
            AggKind::Max => data.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            AggKind::Min => data.iter().cloned().fold(f64::INFINITY, f64::min),
            AggKind::Avg => data.iter().sum::<f64>() / data.len() as f64,
        }
    }

    /// Combine per-segment partial aggregates into a global one.
    /// For `Avg`, partials must be (sum, count) pairs — use
    /// [`AggKind::eval_segments`] instead for a turnkey path.
    pub fn combine(self, partials: &[f64]) -> f64 {
        self.eval(partials)
    }

    /// Evaluate across many segments as one logical series.
    pub fn eval_segments<'a>(self, segments: impl Iterator<Item = &'a [f64]>) -> f64 {
        match self {
            AggKind::Sum => segments.map(|s| s.iter().sum::<f64>()).sum(),
            AggKind::Max => segments
                .map(|s| self.eval(s))
                .fold(f64::NEG_INFINITY, f64::max),
            AggKind::Min => segments.map(|s| self.eval(s)).fold(f64::INFINITY, f64::min),
            AggKind::Avg => {
                let mut total = 0.0;
                let mut count = 0usize;
                for s in segments {
                    total += s.iter().sum::<f64>();
                    count += s.len();
                }
                if count == 0 {
                    0.0
                } else {
                    total / count as f64
                }
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Max => "max",
            AggKind::Min => "min",
            AggKind::Avg => "avg",
        }
    }

    /// The compressed-domain operator equivalent.
    pub fn op(self) -> AggOp {
        match self {
            AggKind::Sum => AggOp::Sum,
            AggKind::Max => AggOp::Max,
            AggKind::Min => AggOp::Min,
            AggKind::Avg => AggOp::Avg,
        }
    }

    /// Evaluate the aggregate over a compressed block, using the
    /// compressed-domain fast path when the codec supports it (PAA window
    /// sums, the FFT DC bin, PLA/LTTB knots, BUFF integer scans) and
    /// decompressing otherwise.
    pub fn eval_block(
        self,
        reg: &CodecRegistry,
        block: &CompressedBlock,
    ) -> crate::error::Result<f64> {
        Ok(agg_with_fallback(reg, block, self.op())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_aggregates() {
        let data = [1.0, -2.0, 3.0, 4.0];
        assert_eq!(AggKind::Sum.eval(&data), 6.0);
        assert_eq!(AggKind::Max.eval(&data), 4.0);
        assert_eq!(AggKind::Min.eval(&data), -2.0);
        assert_eq!(AggKind::Avg.eval(&data), 1.5);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(AggKind::Sum.eval(&[]), 0.0);
        assert_eq!(AggKind::Max.eval(&[]), 0.0);
    }

    #[test]
    fn segment_combination_matches_flat() {
        let a = [1.0, 5.0, 3.0];
        let b = [2.0, -1.0];
        let flat = [1.0, 5.0, 3.0, 2.0, -1.0];
        for kind in [AggKind::Sum, AggKind::Max, AggKind::Min, AggKind::Avg] {
            let seg = kind.eval_segments([a.as_slice(), b.as_slice()].into_iter());
            assert!((seg - kind.eval(&flat)).abs() < 1e-12, "{kind:?}");
        }
    }

    #[test]
    fn combine_max_of_partials() {
        assert_eq!(AggKind::Max.combine(&[3.0, 9.0, 1.0]), 9.0);
    }

    #[test]
    fn eval_block_matches_decompression() {
        use adaedge_codecs::CodecId;
        let reg = CodecRegistry::new(4);
        let data: Vec<f64> = (0..500)
            .map(|i| ((i as f64 * 0.03).sin() * 1e4).round() / 1e4)
            .collect();
        // Direct path (PAA) and fallback path (Sprintz).
        let paa = reg
            .get_lossy(CodecId::Paa)
            .unwrap()
            .compress_to_ratio(&data, 0.2)
            .unwrap();
        let sprintz = reg.get(CodecId::Sprintz).compress(&data).unwrap();
        for kind in [AggKind::Sum, AggKind::Max, AggKind::Min, AggKind::Avg] {
            let via_block = kind.eval_block(&reg, &paa).unwrap();
            let via_decode = kind.eval(&reg.decompress(&paa).unwrap());
            assert!(
                (via_block - via_decode).abs() < 1e-9 * via_decode.abs().max(1.0),
                "{kind:?}: {via_block} vs {via_decode}"
            );
            let lossless = kind.eval_block(&reg, &sprintz).unwrap();
            assert!((lossless - kind.eval(&data)).abs() < 1e-9);
        }
    }
}
