//! Optimization targets (§IV-D): what the MAB maximizes.
//!
//! A target is a weighted sum of normalized components — aggregation
//! accuracy, ML task accuracy and compression throughput. Single targets
//! are the one-component special case; weights must sum to 1.

use crate::query::AggKind;
use adaedge_bandit::Normalizer;
use adaedge_ml::{metrics, Model};

/// One component of an optimization target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetComponent {
    /// Relative accuracy of an aggregation query (ACC_agg).
    AggAccuracy(AggKind),
    /// Machine-learning task accuracy (ACC_ml), needs an attached model.
    MlAccuracy,
    /// Compression throughput (C_thr), min–max normalized online.
    Throughput,
}

/// A (possibly complex) optimization target: weighted components.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationTarget {
    components: Vec<(f64, TargetComponent)>,
}

impl OptimizationTarget {
    /// Single aggregation-accuracy target.
    pub fn agg(kind: AggKind) -> Self {
        Self {
            components: vec![(1.0, TargetComponent::AggAccuracy(kind))],
        }
    }

    /// Single ML-accuracy target.
    pub fn ml() -> Self {
        Self {
            components: vec![(1.0, TargetComponent::MlAccuracy)],
        }
    }

    /// Single compression-throughput target.
    pub fn throughput() -> Self {
        Self {
            components: vec![(1.0, TargetComponent::Throughput)],
        }
    }

    /// Complex weighted target (§IV-D3). Weights must be positive and sum
    /// to 1 (±1e-6).
    pub fn complex(components: Vec<(f64, TargetComponent)>) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        let sum: f64 = components.iter().map(|(w, _)| w).sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights must sum to 1, got {sum}");
        assert!(
            components.iter().all(|&(w, _)| w > 0.0),
            "weights must be positive"
        );
        Self { components }
    }

    /// The weighted components.
    pub fn components(&self) -> &[(f64, TargetComponent)] {
        &self.components
    }

    /// Whether any component needs an ML model.
    pub fn needs_model(&self) -> bool {
        self.components
            .iter()
            .any(|(_, c)| matches!(c, TargetComponent::MlAccuracy))
    }
}

/// Evaluates the optimization target for one compressed segment, producing
/// the MAB reward in [0, 1].
pub struct RewardEvaluator {
    target: OptimizationTarget,
    model: Option<Model>,
    /// Rows of `instance_len` points are cut from each segment for ML
    /// evaluation (a segment typically packs several dataset instances).
    instance_len: usize,
    throughput_norm: Normalizer,
}

impl std::fmt::Debug for RewardEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewardEvaluator")
            .field("target", &self.target)
            .field("has_model", &self.model.is_some())
            .field("instance_len", &self.instance_len)
            .finish()
    }
}

impl RewardEvaluator {
    /// Build an evaluator. `model`/`instance_len` are required when the
    /// target includes ML accuracy.
    pub fn new(target: OptimizationTarget, model: Option<Model>, instance_len: usize) -> Self {
        if target.needs_model() {
            assert!(model.is_some(), "ML target requires a model");
            assert!(instance_len > 0, "ML target requires an instance length");
        }
        Self {
            target,
            model,
            instance_len,
            throughput_norm: Normalizer::new(),
        }
    }

    /// The configured target.
    pub fn target(&self) -> &OptimizationTarget {
        &self.target
    }

    /// The frozen model, if any.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Cut a segment into model-input rows (remainder points dropped).
    fn rows(&self, data: &[f64]) -> Vec<Vec<f64>> {
        data.chunks_exact(self.instance_len)
            .map(|c| c.to_vec())
            .collect()
    }

    /// ML accuracy of a reconstruction against the original segment.
    pub fn ml_accuracy(&self, original: &[f64], reconstructed: &[f64]) -> f64 {
        let model = self.model.as_ref().expect("ml_accuracy requires a model");
        let orig_rows = self.rows(original);
        let lossy_rows = self.rows(reconstructed);
        metrics::ml_accuracy(model, &orig_rows, &lossy_rows)
    }

    /// Aggregation accuracy of a reconstruction.
    pub fn agg_accuracy(&self, kind: AggKind, original: &[f64], reconstructed: &[f64]) -> f64 {
        metrics::agg_accuracy(kind.eval(original), kind.eval(reconstructed)).max(0.0)
    }

    /// Evaluate the full target for one segment.
    ///
    /// * `original` — the raw points,
    /// * `reconstructed` — decompressed output of the selected codec,
    /// * `compress_seconds` — wall time the compression took.
    pub fn evaluate(
        &mut self,
        original: &[f64],
        reconstructed: &[f64],
        compress_seconds: f64,
    ) -> f64 {
        let mut reward = 0.0;
        for &(w, component) in self.target.components.clone().iter() {
            let value = match component {
                TargetComponent::AggAccuracy(kind) => {
                    self.agg_accuracy(kind, original, reconstructed)
                }
                TargetComponent::MlAccuracy => self.ml_accuracy(original, reconstructed),
                TargetComponent::Throughput => {
                    let thr = metrics::compression_throughput(original.len() * 8, compress_seconds);
                    self.throughput_norm.observe_and_normalize(thr)
                }
            };
            reward += w * value;
        }
        reward.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_ml::{Dataset, TreeConfig};

    fn model() -> Model {
        let data = Dataset::new(
            vec![
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![8.0, 8.0],
                vec![9.0, 9.0],
            ],
            vec![0, 0, 1, 1],
        );
        Model::train_dtree(&data, TreeConfig::default())
    }

    #[test]
    fn single_target_constructors() {
        assert_eq!(OptimizationTarget::ml().components().len(), 1);
        assert!(OptimizationTarget::ml().needs_model());
        assert!(!OptimizationTarget::agg(AggKind::Sum).needs_model());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_rejected() {
        OptimizationTarget::complex(vec![
            (0.5, TargetComponent::Throughput),
            (0.2, TargetComponent::MlAccuracy),
        ]);
    }

    #[test]
    fn perfect_reconstruction_gets_full_reward() {
        let mut eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model()), 2);
        let data = vec![1.0, 1.0, 9.0, 9.0];
        assert_eq!(eval.evaluate(&data, &data, 1.0), 1.0);
    }

    #[test]
    fn label_flips_reduce_ml_reward() {
        let mut eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model()), 2);
        let data = vec![1.0, 1.0, 9.0, 9.0];
        let bad = vec![9.0, 9.0, 9.0, 9.0]; // first row flipped to class 1
        assert_eq!(eval.evaluate(&data, &bad, 1.0), 0.5);
    }

    #[test]
    fn agg_reward_tracks_relative_error() {
        let mut eval = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let data = vec![10.0, 10.0];
        let close = vec![9.0, 10.0];
        let r = eval.evaluate(&data, &close, 1.0);
        assert!((r - 0.95).abs() < 1e-9, "{r}");
    }

    #[test]
    fn complex_target_mixes_components() {
        let target = OptimizationTarget::complex(vec![
            (0.625, TargetComponent::AggAccuracy(AggKind::Sum)),
            (0.375, TargetComponent::MlAccuracy),
        ]);
        let mut eval = RewardEvaluator::new(target, Some(model()), 2);
        let data = vec![1.0, 1.0, 9.0, 9.0];
        // Perfect on both components.
        assert!((eval.evaluate(&data, &data, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_component_prefers_fast_codecs() {
        let mut eval = RewardEvaluator::new(OptimizationTarget::throughput(), None, 0);
        let data = vec![0.0; 1000];
        // Warm the normalizer with a slow and a fast observation.
        eval.evaluate(&data, &data, 1.0);
        eval.evaluate(&data, &data, 0.001);
        let slow = eval.evaluate(&data, &data, 0.8);
        let fast = eval.evaluate(&data, &data, 0.002);
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    #[should_panic(expected = "requires a model")]
    fn ml_target_without_model_rejected() {
        RewardEvaluator::new(OptimizationTarget::ml(), None, 2);
    }
}
