//! Comparison baselines from the paper's evaluation (§V):
//!
//! * **Fixed codecs / fixed pairs** — a predetermined lossless codec with a
//!   predetermined lossy fallback (`lossless_lossy` in Figures 12–14).
//! * **CodecDB-like** — static data-driven lossless selection: samples the
//!   first segments, commits to the best lossless codec, and *fails* when
//!   the required ratio is out of lossless reach (it has no lossy path).
//! * **TVStore-like** — a single lossy method (PLA) at every level.

use crate::error::{AdaEdgeError, Result};
use crate::selector::Selection;
use adaedge_codecs::{CodecError, CodecId, CodecRegistry, CompressedBlock};
use std::time::Instant;

/// A fixed `lossless_lossy` pair baseline.
#[derive(Debug, Clone, Copy)]
pub struct FixedPair {
    /// The lossless codec used while space allows.
    pub lossless: CodecId,
    /// The lossy codec used when a target ratio is imposed.
    pub lossy: CodecId,
}

impl FixedPair {
    /// Construct a pair; panics if the roles are mismatched.
    pub fn new(lossless: CodecId, lossy: CodecId) -> Self {
        assert!(lossless.is_lossless(), "{lossless} is not lossless");
        assert!(!lossy.is_lossless(), "{lossy} is not lossy");
        Self { lossless, lossy }
    }

    /// Display name in the paper's `lossless_lossy` convention.
    pub fn name(&self) -> String {
        format!(
            "{}_{}",
            self.lossless.name().replace('-', ""),
            self.lossy.name().replace('-', "")
        )
    }

    /// Compress a fresh segment losslessly.
    pub fn compress_lossless(&self, reg: &CodecRegistry, data: &[f64]) -> Result<Selection> {
        let t0 = Instant::now();
        let block = reg.get(self.lossless).compress(data)?;
        let seconds = t0.elapsed().as_secs_f64();
        Ok(Selection {
            codec: self.lossless,
            block,
            seconds,
            reward: 0.0,
        })
    }

    /// Compress to a target ratio with the lossy half.
    pub fn compress_lossy(
        &self,
        reg: &CodecRegistry,
        data: &[f64],
        ratio: f64,
    ) -> Result<Selection> {
        let lossy = reg
            .get_lossy(self.lossy)
            .expect("lossy role checked at construction");
        let t0 = Instant::now();
        let block = lossy.compress_to_ratio(data, ratio)?;
        let seconds = t0.elapsed().as_secs_f64();
        Ok(Selection {
            codec: self.lossy,
            block,
            seconds,
            reward: 0.0,
        })
    }

    /// Recode an existing block to a tighter ratio: virtual decompression
    /// when the block already uses the pair's lossy codec, otherwise a full
    /// decompress + re-compress (this is where slow decompressors — e.g.
    /// Gorilla in Figure 14 — lose the race).
    pub fn recode(
        &self,
        reg: &CodecRegistry,
        block: &CompressedBlock,
        ratio: f64,
    ) -> Result<Selection> {
        let t0 = Instant::now();
        let same_family = block.codec == self.lossy
            || (self.lossy == CodecId::BuffLossy && block.codec == CodecId::Buff);
        let new_block = if same_family {
            reg.recode(block, ratio)?
        } else {
            let decoded = reg.decompress(block)?;
            reg.get_lossy(self.lossy)
                .expect("lossy role checked at construction")
                .compress_to_ratio(&decoded, ratio)?
        };
        let seconds = t0.elapsed().as_secs_f64();
        Ok(Selection {
            codec: self.lossy,
            block: new_block,
            seconds,
            reward: 0.0,
        })
    }

    /// Whether the lossy half can reach `ratio` on `n`-point segments.
    pub fn lossy_feasible(&self, reg: &CodecRegistry, n: usize, ratio: f64) -> bool {
        reg.get_lossy(self.lossy)
            .map(|c| c.min_ratio(n) <= ratio)
            .unwrap_or(false)
    }
}

/// CodecDB-like baseline: static sample-based lossless selection.
#[derive(Debug)]
pub struct CodecDbBaseline {
    sample_budget: usize,
    observed: Vec<(CodecId, f64)>,
    committed: Option<CodecId>,
    candidates: Vec<CodecId>,
    round: usize,
}

impl CodecDbBaseline {
    /// Create a baseline that probes each candidate `sample_budget` times
    /// before committing to the smallest-output codec.
    pub fn new(candidates: Vec<CodecId>, sample_budget: usize) -> Self {
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|c| c.is_lossless()));
        Self {
            sample_budget: sample_budget.max(1),
            observed: Vec::new(),
            committed: None,
            candidates,
            round: 0,
        }
    }

    /// The codec the baseline has committed to, if sampling has finished.
    pub fn committed(&self) -> Option<CodecId> {
        self.committed
    }

    /// Compress one segment. During the sampling phase each candidate is
    /// probed round-robin; afterwards the committed codec is used
    /// unconditionally.
    pub fn compress(&mut self, reg: &CodecRegistry, data: &[f64]) -> Result<Selection> {
        let codec = match self.committed {
            Some(c) => c,
            None => {
                let c = self.candidates[self.round % self.candidates.len()];
                self.round += 1;
                c
            }
        };
        let t0 = Instant::now();
        let block = reg.get(codec).compress(data)?;
        let seconds = t0.elapsed().as_secs_f64();
        if self.committed.is_none() {
            self.observed.push((codec, block.ratio()));
            if self.round >= self.candidates.len() * self.sample_budget {
                // Commit to the candidate with the best mean ratio.
                let mut best = (self.candidates[0], f64::INFINITY);
                for &cand in &self.candidates {
                    let ratios: Vec<f64> = self
                        .observed
                        .iter()
                        .filter(|(c, _)| *c == cand)
                        .map(|&(_, r)| r)
                        .collect();
                    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
                    if mean < best.1 {
                        best = (cand, mean);
                    }
                }
                self.committed = Some(best.0);
            }
        }
        Ok(Selection {
            codec,
            block,
            seconds,
            reward: 0.0,
        })
    }

    /// Compress under a required ratio: CodecDB has no lossy path, so it
    /// fails outright when its (committed or probing) codec overshoots —
    /// the "CodecDB fails" annotations of Figures 7 and 12.
    pub fn compress_for_ratio(
        &mut self,
        reg: &CodecRegistry,
        data: &[f64],
        ratio: f64,
    ) -> Result<Selection> {
        let sel = self.compress(reg, data)?;
        if sel.block.ratio() > ratio {
            return Err(AdaEdgeError::NoFeasibleArm {
                target_ratio: ratio,
            });
        }
        Ok(sel)
    }
}

/// TVStore-like baseline: PLA at every compression level.
#[derive(Debug, Default)]
pub struct TvStoreBaseline;

impl TvStoreBaseline {
    /// Create the baseline.
    pub fn new() -> Self {
        Self
    }

    /// Compress a segment to a target ratio with PLA.
    pub fn compress(&self, reg: &CodecRegistry, data: &[f64], ratio: f64) -> Result<Selection> {
        let pla = reg.get_lossy(CodecId::Pla).expect("PLA is lossy");
        let t0 = Instant::now();
        let block = pla.compress_to_ratio(data, ratio).map_err(|e| match e {
            CodecError::RatioUnreachable { requested, .. } => AdaEdgeError::NoFeasibleArm {
                target_ratio: requested,
            },
            other => AdaEdgeError::Codec(other),
        })?;
        let seconds = t0.elapsed().as_secs_f64();
        Ok(Selection {
            codec: CodecId::Pla,
            block,
            seconds,
            reward: 0.0,
        })
    }

    /// Recode an existing PLA block to a tighter ratio.
    pub fn recode(
        &self,
        reg: &CodecRegistry,
        block: &CompressedBlock,
        ratio: f64,
    ) -> Result<Selection> {
        let t0 = Instant::now();
        let new_block = if block.codec == CodecId::Pla {
            reg.recode(block, ratio)?
        } else {
            let decoded = reg.decompress(block)?;
            reg.get_lossy(CodecId::Pla)
                .expect("PLA is lossy")
                .compress_to_ratio(&decoded, ratio)?
        };
        Ok(Selection {
            codec: CodecId::Pla,
            block: new_block,
            seconds: t0.elapsed().as_secs_f64(),
            reward: 0.0,
        })
    }
}

/// Offline-mode driver for a fixed pair: the same store + threshold +
/// halving cascade as [`crate::offline::OfflineAdaEdge`], but with the
/// pair's codecs hard-wired instead of MABs. This is the `lossless_lossy`
/// baseline family of Figures 12–14 (and, with `Raw`/`Pla`, the
/// TVStore-like cascade).
pub struct FixedPairOffline {
    reg: CodecRegistry,
    pair: FixedPair,
    store: adaedge_storage::SegmentStore,
    threshold: f64,
    recode_factor: f64,
    originals: std::collections::HashMap<adaedge_storage::SegmentId, Vec<f64>>,
    /// Accumulated compute time (compression + recoding), used by the
    /// high-frequency experiment to detect deadline misses.
    pub compute_seconds: f64,
    /// Total recode passes.
    pub total_recodes: u64,
}

impl std::fmt::Debug for FixedPairOffline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedPairOffline")
            .field("pair", &self.pair.name())
            .field("store", &self.store)
            .finish()
    }
}

impl FixedPairOffline {
    /// Create the driver with the paper's defaults (θ = 0.8, halving).
    pub fn new(pair: FixedPair, budget_bytes: usize, precision: u8) -> Self {
        Self {
            reg: CodecRegistry::new(precision),
            pair,
            store: adaedge_storage::SegmentStore::with_budget(budget_bytes),
            threshold: 0.8,
            recode_factor: 0.5,
            originals: std::collections::HashMap::new(),
            compute_seconds: 0.0,
            total_recodes: 0,
        }
    }

    /// The pair's display name.
    pub fn name(&self) -> String {
        self.pair.name()
    }

    /// Read access to the store.
    pub fn store(&self) -> &adaedge_storage::SegmentStore {
        &self.store
    }

    /// The mean ratio the store must reach to fit under the threshold (the
    /// same breadth-first guard as the MAB pipeline, so pair baselines are
    /// not handicapped by depth-first over-compression).
    fn required_mean_ratio(&self) -> f64 {
        let raw_bytes: usize = self
            .store
            .iter()
            .map(|s| s.n_points() * adaedge_codecs::POINT_BYTES)
            .sum();
        if raw_bytes == 0 {
            return 0.0;
        }
        let budget = self.store.budget_bytes().expect("budgeted store") as f64;
        (self.threshold * budget / raw_bytes as f64).min(1.0)
    }

    /// Recode the least-valuable shrinkable victim once; returns freed bytes.
    fn recode_one(&mut self) -> Result<usize> {
        let r_req = self.required_mean_ratio();
        let victims = self.store.victim_order();
        let mut ordered: Vec<_> = victims
            .iter()
            .copied()
            .filter(|&id| {
                self.store
                    .peek(id)
                    .map(|s| s.ratio() > r_req)
                    .unwrap_or(false)
            })
            .collect();
        ordered.extend(victims.iter().copied().filter(|&id| {
            self.store
                .peek(id)
                .map(|s| s.ratio() <= r_req)
                .unwrap_or(false)
        }));
        for id in ordered {
            let Some(seg) = self.store.peek(id) else {
                continue;
            };
            let Some(block) = seg.block() else { continue };
            let old_bytes = block.compressed_bytes();
            let target = (seg.ratio() * self.recode_factor).max(r_req.min(seg.ratio() * 0.9));
            let block = block.clone();
            match self.pair.recode(&self.reg, &block, target) {
                Ok(sel) => {
                    if sel.block.compressed_bytes() >= old_bytes {
                        continue;
                    }
                    self.compute_seconds += sel.seconds;
                    let freed = old_bytes - sel.block.compressed_bytes();
                    self.store.replace(id, sel.block)?;
                    self.total_recodes += 1;
                    return Ok(freed);
                }
                Err(AdaEdgeError::Codec(CodecError::RatioUnreachable { .. }))
                | Err(AdaEdgeError::Codec(CodecError::RecodeUnsupported(_))) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(0)
    }

    /// Ingest one segment through the fixed cascade.
    pub fn ingest(&mut self, data: &[f64]) -> Result<()> {
        let sel = self.pair.compress_lossless(&self.reg, data)?;
        self.compute_seconds += sel.seconds;
        let incoming = sel.block.compressed_bytes();
        let budget = self.store.budget_bytes().expect("budgeted store") as f64;
        loop {
            let projected = (self.store.used_bytes() + incoming) as f64;
            if projected <= self.threshold * budget {
                break;
            }
            if self.recode_one()? == 0 {
                if projected <= budget {
                    break;
                }
                return Err(AdaEdgeError::Store(
                    adaedge_storage::StoreError::BudgetExceeded {
                        needed: incoming,
                        available: (budget as usize).saturating_sub(self.store.used_bytes()),
                    },
                ));
            }
        }
        let id = self.store.put_compressed(sel.block)?;
        self.originals.insert(id, data.to_vec());
        Ok(())
    }

    /// Reconstruct all segments with their originals, ingestion order.
    pub fn reconstruct_all(&self) -> Result<Vec<(Vec<f64>, Vec<f64>)>> {
        let mut out = Vec::with_capacity(self.store.len());
        for id in self.store.ids() {
            let seg = self.store.peek(id).expect("listed id exists");
            let rec = match seg.block() {
                Some(block) => self.reg.decompress(block)?,
                None => continue,
            };
            let orig = self.originals.get(&id).expect("original kept").clone();
            out.push((orig, rec));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> CodecRegistry {
        CodecRegistry::new(4)
    }

    fn smooth(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 * 0.01).sin() * 3.0 * 1e4).round() / 1e4)
            .collect()
    }

    #[test]
    fn fixed_pair_naming() {
        let p = FixedPair::new(CodecId::Gzip, CodecId::BuffLossy);
        assert_eq!(p.name(), "gzip_bufflossy");
        let p = FixedPair::new(CodecId::Gorilla, CodecId::Fft);
        assert_eq!(p.name(), "gorilla_fft");
    }

    #[test]
    #[should_panic(expected = "not lossless")]
    fn fixed_pair_role_check() {
        FixedPair::new(CodecId::Paa, CodecId::Fft);
    }

    #[test]
    fn fixed_pair_compress_and_recode() {
        let reg = reg();
        let p = FixedPair::new(CodecId::Sprintz, CodecId::Paa);
        let data = smooth(1000);
        let lossless = p.compress_lossless(&reg, &data).unwrap();
        assert_eq!(lossless.codec, CodecId::Sprintz);
        // First recode: sprintz → paa (full path).
        let recoded = p.recode(&reg, &lossless.block, 0.3).unwrap();
        assert_eq!(recoded.codec, CodecId::Paa);
        // Second recode: paa → paa (virtual path).
        let again = p.recode(&reg, &recoded.block, 0.1).unwrap();
        assert!(again.block.ratio() <= 0.1 + 1e-9);
    }

    #[test]
    fn codecdb_commits_to_best_lossless() {
        let reg = reg();
        let mut db = CodecDbBaseline::new(CodecRegistry::lossless_candidates(), 2);
        let data = smooth(1000);
        for _ in 0..CodecRegistry::lossless_candidates().len() * 2 {
            db.compress(&reg, &data).unwrap();
        }
        // Sprintz wins on smooth 4-digit data.
        assert_eq!(db.committed(), Some(CodecId::Sprintz));
    }

    #[test]
    fn codecdb_fails_below_lossless_reach() {
        let reg = reg();
        let mut db = CodecDbBaseline::new(vec![CodecId::Sprintz], 1);
        let data = smooth(1000);
        db.compress(&reg, &data).unwrap(); // commit
        let err = db.compress_for_ratio(&reg, &data, 0.01).unwrap_err();
        assert!(matches!(err, AdaEdgeError::NoFeasibleArm { .. }));
        // But it succeeds within lossless reach.
        assert!(db.compress_for_ratio(&reg, &data, 0.5).is_ok());
    }

    #[test]
    fn fixed_pair_offline_cascade_bounds_space() {
        let pair = FixedPair::new(CodecId::Sprintz, CodecId::Paa);
        let mut driver = FixedPairOffline::new(pair, 20_000, 4);
        for s in 0..40 {
            let data: Vec<f64> = (0..1000)
                .map(|i| (((s * 1000 + i) as f64 * 0.01).sin() * 1e4).round() / 1e4)
                .collect();
            driver.ingest(&data).unwrap();
        }
        assert_eq!(driver.store().len(), 40);
        assert!(driver.total_recodes > 0);
        assert!(driver.store().utilization() <= 1.0 + 1e-9);
        let pairs = driver.reconstruct_all().unwrap();
        assert_eq!(pairs.len(), 40);
        assert!(pairs
            .iter()
            .all(|(o, r)| o.len() == 1000 && r.len() == 1000));
    }

    #[test]
    fn fixed_pair_offline_fails_when_floor_hit() {
        // BUFF-lossy cannot shrink below ≈0.125; a tiny budget must fail.
        let pair = FixedPair::new(CodecId::Buff, CodecId::BuffLossy);
        let mut driver = FixedPairOffline::new(pair, 3_000, 4);
        let mut failed = false;
        for s in 0..40 {
            let data: Vec<f64> = (0..1000)
                .map(|i| (((s * 1000 + i) as f64 * 0.013).sin() * 3e4).round() / 1e4)
                .collect();
            if driver.ingest(&data).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "pair should run out of shrink room");
    }

    #[test]
    fn tvstore_is_pla_everywhere() {
        let reg = reg();
        let tv = TvStoreBaseline::new();
        let data = smooth(1000);
        for ratio in [0.5, 0.2, 0.05] {
            let sel = tv.compress(&reg, &data, ratio).unwrap();
            assert_eq!(sel.codec, CodecId::Pla);
            assert!(sel.block.ratio() <= ratio + 1e-9);
        }
        let sel = tv.compress(&reg, &data, 0.3).unwrap();
        let recoded = tv.recode(&reg, &sel.block, 0.1).unwrap();
        assert!(recoded.block.ratio() <= 0.1 + 1e-9);
    }
}
