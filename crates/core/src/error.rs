//! Framework-level error type.

use adaedge_codecs::CodecError;
use adaedge_storage::StoreError;

/// Errors surfaced by the AdaEdge framework.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaEdgeError {
    /// A codec failed.
    Codec(CodecError),
    /// The segment store rejected an operation (budget breach = the
    /// experiment "fails", as in the paper's setup).
    Store(StoreError),
    /// No candidate codec can reach the required target ratio on this
    /// segment — the regime where conventional selection frameworks fail
    /// outright (§III-A1).
    NoFeasibleArm {
        /// The ratio that was required.
        target_ratio: f64,
    },
    /// The ingestion deadline was missed: compression/recoding could not
    /// keep up with the signal rate (the Figure-14 failure mode).
    DeadlineMissed {
        /// Seconds of processing backlog beyond the allowance.
        backlog_seconds: f64,
    },
    /// A pipeline worker thread died (panicked outside the contained
    /// codec-call region) and its results are lost. The per-codec panics
    /// the engine catches and degrades around do *not* raise this; it is
    /// the containment boundary of last resort.
    WorkerFailed {
        /// Which pipeline stage lost a thread.
        stage: &'static str,
    },
    /// Configuration error.
    Config(&'static str),
}

impl std::fmt::Display for AdaEdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaEdgeError::Codec(e) => write!(f, "codec error: {e}"),
            AdaEdgeError::Store(e) => write!(f, "store error: {e}"),
            AdaEdgeError::NoFeasibleArm { target_ratio } => {
                write!(f, "no codec can reach target ratio {target_ratio:.4}")
            }
            AdaEdgeError::DeadlineMissed { backlog_seconds } => {
                write!(f, "ingestion deadline missed by {backlog_seconds:.3}s")
            }
            AdaEdgeError::WorkerFailed { stage } => {
                write!(f, "pipeline worker failed: {stage}")
            }
            AdaEdgeError::Config(what) => write!(f, "configuration error: {what}"),
        }
    }
}

impl std::error::Error for AdaEdgeError {}

impl From<CodecError> for AdaEdgeError {
    fn from(e: CodecError) -> Self {
        AdaEdgeError::Codec(e)
    }
}

impl From<StoreError> for AdaEdgeError {
    fn from(e: StoreError) -> Self {
        AdaEdgeError::Store(e)
    }
}

/// Convenient alias.
pub type Result<T> = std::result::Result<T, AdaEdgeError>;

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_codecs::CodecId;
    use adaedge_storage::SegmentId;

    #[test]
    fn no_feasible_arm_displays_target() {
        let e = AdaEdgeError::NoFeasibleArm { target_ratio: 0.05 };
        let msg = e.to_string();
        assert!(msg.contains("no codec"), "{msg}");
        assert!(msg.contains("0.0500"), "{msg}");
        assert_eq!(e, e.clone());
    }

    #[test]
    fn deadline_missed_displays_backlog() {
        let e = AdaEdgeError::DeadlineMissed {
            backlog_seconds: 1.25,
        };
        let msg = e.to_string();
        assert!(msg.contains("deadline missed"), "{msg}");
        assert!(msg.contains("1.250"), "{msg}");
    }

    #[test]
    fn worker_failed_displays_stage() {
        let e = AdaEdgeError::WorkerFailed {
            stage: "compression worker",
        };
        assert_eq!(e.to_string(), "pipeline worker failed: compression worker");
    }

    #[test]
    fn wrong_codec_round_trips_through_from() {
        let codec_err = CodecError::WrongCodec {
            expected: CodecId::Paa,
            found: CodecId::Fft,
        };
        let e: AdaEdgeError = codec_err.clone().into();
        assert_eq!(e, AdaEdgeError::Codec(codec_err.clone()));
        let msg = e.to_string();
        assert!(msg.starts_with("codec error:"), "{msg}");
        assert!(msg.contains("Paa") && msg.contains("Fft"), "{msg}");
        // The inner error is preserved verbatim inside the framework error.
        match e {
            AdaEdgeError::Codec(inner) => assert_eq!(inner, codec_err),
            other => panic!("expected Codec variant, got {other:?}"),
        }
    }

    #[test]
    fn store_error_round_trips_through_from() {
        let store_err = StoreError::NotFound(SegmentId(7));
        let e: AdaEdgeError = store_err.clone().into();
        assert_eq!(e, AdaEdgeError::Store(store_err));
        let msg = e.to_string();
        assert!(msg.starts_with("store error:"), "{msg}");
        assert!(msg.contains("seg#7"), "{msg}");
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(AdaEdgeError::Config("bad"));
        assert_eq!(e.to_string(), "configuration error: bad");
    }
}
