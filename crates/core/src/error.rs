//! Framework-level error type.

use adaedge_codecs::CodecError;
use adaedge_storage::StoreError;

/// Errors surfaced by the AdaEdge framework.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaEdgeError {
    /// A codec failed.
    Codec(CodecError),
    /// The segment store rejected an operation (budget breach = the
    /// experiment "fails", as in the paper's setup).
    Store(StoreError),
    /// No candidate codec can reach the required target ratio on this
    /// segment — the regime where conventional selection frameworks fail
    /// outright (§III-A1).
    NoFeasibleArm {
        /// The ratio that was required.
        target_ratio: f64,
    },
    /// The ingestion deadline was missed: compression/recoding could not
    /// keep up with the signal rate (the Figure-14 failure mode).
    DeadlineMissed {
        /// Seconds of processing backlog beyond the allowance.
        backlog_seconds: f64,
    },
    /// Configuration error.
    Config(&'static str),
}

impl std::fmt::Display for AdaEdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaEdgeError::Codec(e) => write!(f, "codec error: {e}"),
            AdaEdgeError::Store(e) => write!(f, "store error: {e}"),
            AdaEdgeError::NoFeasibleArm { target_ratio } => {
                write!(f, "no codec can reach target ratio {target_ratio:.4}")
            }
            AdaEdgeError::DeadlineMissed { backlog_seconds } => {
                write!(f, "ingestion deadline missed by {backlog_seconds:.3}s")
            }
            AdaEdgeError::Config(what) => write!(f, "configuration error: {what}"),
        }
    }
}

impl std::error::Error for AdaEdgeError {}

impl From<CodecError> for AdaEdgeError {
    fn from(e: CodecError) -> Self {
        AdaEdgeError::Codec(e)
    }
}

impl From<StoreError> for AdaEdgeError {
    fn from(e: StoreError) -> Self {
        AdaEdgeError::Store(e)
    }
}

/// Convenient alias.
pub type Result<T> = std::result::Result<T, AdaEdgeError>;
