//! Sharded selector replication with delta-sync (the CStream-style
//! parallel-scaling layer).
//!
//! The engines in [`crate::engine`] run one pipeline *per shard*: each
//! shard owns a bounded segment queue, a recycle pool, and — the part this
//! module provides — a **local selector replica** that makes every arm
//! decision lock-free from its own copy of the bandit state. Replicas stay
//! coherent through a [`SharedOutcomeTable`]: per-batch outcome deltas are
//! published with plain `fetch_add`s (no mutex anywhere on the segment hot
//! path), and every [`ReplicaSelector::sync_interval`] decisions a replica
//! folds the *foreign* deltas — everything other shards published since
//! its last sync — back into its local policy via
//! [`adaedge_bandit::Policy::fold`].
//!
//! Staleness semantics: between syncs a replica's estimates lag the global
//! posterior by at most `(S − 1) · sync_interval` decisions' worth of
//! foreign outcomes. For sample-average policies the fold itself is exact
//! (posteriors depend only on per-arm sums and counts), so a replica that
//! has just synced holds, up to the table's ~2⁻³² fixed-point quantization,
//! exactly the centralized posterior. With a single shard there are no
//! foreign deltas at all and the replica *is* the centralized selector,
//! bit for bit — that is the bandit-exact mode the equivalence suites pin.
//!
//! Fault containment composes the same way: quarantine verdicts
//! ([`crate::selector::QUARANTINE_AFTER`] consecutive local failures) are
//! published as bits in the table and imposed on every other replica at
//! its next sync, while consecutive-failure *streaks* stay shard-local so
//! one shard's pathological data cannot quarantine a codec that works
//! elsewhere.

use crate::selector::{ArmOutcome, LosslessSelector, SelectorConfig};
use adaedge_codecs::CodecId;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Fixed-point scale for reward sums in the shared table: rewards lie in
/// `[0, 1]`, so 2³² units per unit reward keeps published sums exact to
/// ~2⁻³³ while a `u64` accumulator lasts ~4 billion pulls before overflow.
const REWARD_UNIT: f64 = (1u64 << 32) as f64;

/// Quantize a reward into table units (round-to-nearest).
#[inline]
fn to_units(reward: f64) -> u64 {
    (reward * REWARD_UNIT).round() as u64
}

/// Resolve a configured thread/shard count: `0` means "one per core"
/// (`std::thread::available_parallelism`), anything else is taken as is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Per-shard recycle-pool size for a shard whose queue holds `batch_cap`
/// batches in a pipeline with `n_shards` worker shards.
///
/// Derivation (the pigeonhole no-deadlock argument, re-derived for
/// sharding with work-stealing): a shard's batches can simultaneously sit
/// in (a) its own queue — at most `batch_cap`, since the producer only
/// enqueues a batch on its home shard's queue; (b) workers' hands — at
/// most `n_shards`, because **any** worker may steal and hold one batch
/// from this shard, not just the shard's own worker; (c) the producer's
/// hand — at most 1. With `batch_cap + n_shards + 1` batches in the pool,
/// at least one is therefore always in (or headed to) the recycle channel
/// and the producer's blocking `recv` cannot deadlock. The pre-shard
/// global bound (`cap + threads + 1`) naively ported per shard would give
/// `batch_cap + 1 + 1` (one worker per shard) and under-provisions by the
/// `n_shards − 1` batches stealing can strand in foreign workers' hands.
pub fn shard_pool_size(batch_cap: usize, n_shards: usize) -> usize {
    batch_cap + n_shards + 1
}

/// A parked-wake rendezvous between queue producers and sweeping
/// consumers, replacing the old fixed 1 ms steal-backoff sleep.
///
/// The work-stealing loop's problem: a worker that sweeps every shard
/// queue, finds them all momentarily empty and blocks on *one* queue's
/// condvar sleeps through a batch that lands on any *other* queue —
/// with the old `recv_timeout(1ms)` rescan, up to a millisecond per
/// arrival (the tuning item flagged in ROADMAP). The gate gives sweepers
/// one place to park that **every** enqueue wakes:
///
/// * A producer calls [`WorkGate::notify`] after each enqueue: one
///   `fetch_add` on the epoch plus a sleeper check — it takes the mutex
///   only when somebody is actually parked, so the hot path with busy
///   workers costs two uncontended atomics.
/// * A consumer snapshots [`WorkGate::epoch`], registers as a sleeper,
///   re-sweeps the queues, and only then parks via [`WorkGate::park`],
///   which re-checks the epoch under the gate lock before sleeping.
///
/// The sleeper registration *precedes* the final re-sweep and the
/// producer bumps the epoch *before* checking for sleepers, so every
/// interleaving either lets the consumer find the batch in its re-sweep
/// or leaves the epoch visibly changed when it tries to park — there is
/// no window where an enqueue slips between sweep and sleep unnoticed.
/// A coarse safety timeout (50 ms) bounds the damage of any future
/// protocol regression without ever being load-bearing.
#[derive(Debug, Default)]
pub struct WorkGate {
    /// Bumped by every enqueue; consumers park against a snapshot of it.
    epoch: AtomicU64,
    /// Consumers currently between registration and wake.
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Safety net for [`WorkGate::park`]: never load-bearing (the epoch
/// protocol guarantees wakeups), only bounding a hypothetical regression.
const PARK_SAFETY_TIMEOUT: Duration = Duration::from_millis(50);

impl WorkGate {
    /// Create an idle gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current epoch; take a snapshot *before* sweeping the queues, then
    /// hand it to [`WorkGate::park`] if the sweep came up empty.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Announce intent to park. Must be called *before* the final
    /// pre-park queue sweep so a concurrent [`WorkGate::notify`] is
    /// guaranteed to see the sleeper; pair with [`WorkGate::park`] or
    /// [`WorkGate::cancel_park`].
    pub fn register_sleeper(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
    }

    /// Withdraw a [`WorkGate::register_sleeper`] after the re-sweep found
    /// work (no park happened).
    pub fn cancel_park(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Park until the epoch moves past `ticket` (an enqueue happened since
    /// the snapshot) or the safety timeout lapses. The caller must have
    /// registered as a sleeper first; the registration is consumed.
    pub fn park(&self, ticket: u64) {
        let mut guard = self.lock.lock();
        if self.epoch.load(Ordering::SeqCst) == ticket {
            self.cv.wait_for(&mut guard, PARK_SAFETY_TIMEOUT);
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Signal that work was enqueued (or that the pipeline is shutting
    /// down and parked consumers should re-check their queues).
    pub fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }
}

/// One arm's shared accumulators.
#[derive(Debug, Default)]
struct ArmCell {
    /// Successful pulls published for this arm, across all shards.
    pulls: AtomicU64,
    /// Fixed-point reward sum ([`REWARD_UNIT`] units) for those pulls.
    reward_units: AtomicU64,
    /// Cumulative contained failures (codec errors / caught panics).
    failures: AtomicU64,
}

/// The shared, mutex-free outcome table replicas publish to and fold from.
///
/// Every field is an atomic counter: the segment hot path touches it only
/// through `fetch_add` / `fetch_or`, never a lock. The table also carries
/// the engine's contention and work-stealing observability counters so a
/// report can *prove* the hot path stayed lock-free.
#[derive(Debug)]
pub struct SharedOutcomeTable {
    arms: Vec<ArmCell>,
    /// Quarantine verdict bitmask (bit `i` = arm `i`); `fetch_or` to set.
    quarantined_bits: AtomicU64,
    /// Delta-sync folds performed across all replicas.
    syncs: AtomicU64,
    /// Mutex acquisitions on the per-segment selector hot path. The
    /// sharded pipelines have no such path, so this stays 0; any engine
    /// code that reintroduces a shared selector lock must count it here,
    /// and the shard-equivalence suite asserts the report shows zero.
    selector_locks: AtomicU64,
    /// Batches taken from a foreign shard's queue (work-stealing).
    stolen_batches: AtomicU64,
}

impl SharedOutcomeTable {
    /// Create a table for `n_arms` arms (at most 64, for the quarantine
    /// bitmask — the codec roster is an order of magnitude smaller).
    pub fn new(n_arms: usize) -> Self {
        assert!(n_arms <= 64, "quarantine bitmask holds at most 64 arms");
        Self {
            arms: (0..n_arms).map(|_| ArmCell::default()).collect(),
            quarantined_bits: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            selector_locks: AtomicU64::new(0),
            stolen_batches: AtomicU64::new(0),
        }
    }

    /// Number of arms tracked.
    pub fn n_arms(&self) -> usize {
        self.arms.len()
    }

    /// Publish a batch's outcome delta for `arm`: `pulls` successful
    /// compressions totalling `reward_units` fixed-point reward.
    ///
    /// The reward sum is added *before* the pull count with a `Release`
    /// increment, so a reader that observes the pulls (`Acquire`) is
    /// guaranteed to observe at least the matching reward units; any
    /// excess units from a concurrently publishing shard are clamped at
    /// fold time and picked up by the next sync.
    fn publish(&self, arm: usize, pulls: u64, reward_units: u64) {
        if pulls == 0 {
            return;
        }
        self.arms[arm]
            .reward_units
            .fetch_add(reward_units, Ordering::Relaxed);
        self.arms[arm].pulls.fetch_add(pulls, Ordering::Release);
    }

    /// Record one contained failure for `arm`.
    fn record_failure(&self, arm: usize) {
        self.arms[arm].failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish a quarantine verdict for `arm`.
    fn quarantine(&self, arm: usize) {
        self.quarantined_bits
            .fetch_or(1u64 << arm, Ordering::Release);
    }

    /// Current quarantine bitmask.
    pub fn quarantine_bits(&self) -> u64 {
        self.quarantined_bits.load(Ordering::Acquire)
    }

    /// Globally quarantined arms, mapped through the engine's arm roster.
    pub fn quarantined_arms(&self, roster: &[CodecId]) -> Vec<CodecId> {
        let bits = self.quarantine_bits();
        roster
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (bits & (1u64 << i) != 0).then_some(c))
            .collect()
    }

    /// Total contained failures across all arms and shards.
    pub fn failure_total(&self) -> u64 {
        self.arms
            .iter()
            .map(|c| c.failures.load(Ordering::Relaxed))
            .sum()
    }

    /// Total successful pulls across all arms and shards.
    pub fn pull_total(&self) -> u64 {
        self.arms
            .iter()
            .map(|c| c.pulls.load(Ordering::Relaxed))
            .sum()
    }

    /// Delta-sync folds performed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Hot-path selector-mutex acquisitions (0 in the sharded engines).
    pub fn selector_locks(&self) -> u64 {
        self.selector_locks.load(Ordering::Relaxed)
    }

    /// Count one hot-path selector-mutex acquisition. No sharded pipeline
    /// calls this; it exists so any future locked path is forced to show
    /// up in the report the equivalence suite pins to zero.
    pub fn count_selector_lock(&self) {
        self.selector_locks.fetch_add(1, Ordering::Relaxed);
    }

    /// Batches stolen from foreign shard queues.
    pub fn stolen_batches(&self) -> u64 {
        self.stolen_batches.load(Ordering::Relaxed)
    }

    /// Count one stolen batch.
    pub fn count_steal(&self) {
        self.stolen_batches.fetch_add(1, Ordering::Relaxed);
    }
}

/// A shard-local selector replica: a full [`LosslessSelector`] plus the
/// delta-sync bookkeeping that keeps it coherent with the other shards.
///
/// All decision-making ([`Self::select_arm`]) and reward accounting
/// ([`Self::report_batch`]) run on the owning shard's thread with no
/// locking; the only cross-shard traffic is `fetch_add` publication and
/// the periodic fold.
pub struct ReplicaSelector<'t> {
    inner: LosslessSelector,
    table: &'t SharedOutcomeTable,
    sync_interval: usize,
    decisions_since_sync: usize,
    /// Per-arm global pulls already reflected in `inner` (own published
    /// plus previously folded foreign).
    accounted_pulls: Vec<u64>,
    /// Per-arm table reward units already reflected in `inner`.
    accounted_units: Vec<u64>,
}

impl std::fmt::Debug for ReplicaSelector<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSelector")
            .field("inner", &self.inner)
            .field("sync_interval", &self.sync_interval)
            .finish()
    }
}

impl<'t> ReplicaSelector<'t> {
    /// Create the replica for `shard_id`.
    ///
    /// Shard 0 keeps the configured RNG seed unchanged — with a single
    /// shard the replica reproduces the centralized selector bit for bit.
    /// Other shards decorrelate their exploration streams by folding the
    /// shard id into the seed (identical streams would explore the same
    /// arms in lock-step, wasting the fleet's exploration budget).
    pub fn new(
        arms: Vec<CodecId>,
        config: SelectorConfig,
        shard_id: usize,
        table: &'t SharedOutcomeTable,
        sync_interval: usize,
    ) -> Self {
        assert_eq!(arms.len(), table.n_arms(), "table/roster arm mismatch");
        let mut config = config;
        config.seed ^= (shard_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let n = arms.len();
        Self {
            inner: LosslessSelector::new(arms, config),
            table,
            sync_interval: sync_interval.max(1),
            decisions_since_sync: 0,
            accounted_pulls: vec![0; n],
            accounted_units: vec![0; n],
        }
    }

    /// The configured decisions-per-fold interval.
    pub fn sync_interval(&self) -> usize {
        self.sync_interval
    }

    /// The local selector state (estimates, pulls, quarantine — for
    /// reports and the equivalence tests).
    pub fn local(&self) -> &LosslessSelector {
        &self.inner
    }

    /// Pick an arm from the local replica. Lock-free: no shared state is
    /// touched at all.
    pub fn select_arm(&mut self) -> (usize, CodecId) {
        self.inner.select_arm()
    }

    /// Report one batch of outcomes for `arm`: apply them to the local
    /// replica with exactly the centralized arithmetic, publish the delta
    /// to the shared table (two `fetch_add`s per batch plus one per
    /// failure), and fold foreign deltas if the sync interval elapsed.
    ///
    /// Counts as **one decision** toward the sync interval, matching the
    /// one `select_arm` call that produced the batch.
    pub fn report_batch(&mut self, arm: usize, outcomes: &[ArmOutcome]) {
        let mut batch_pulls = 0u64;
        let mut batch_units = 0u64;
        for &outcome in outcomes {
            match outcome {
                ArmOutcome::Ratio(ratio) => {
                    let reward = self.inner.report_ratio(arm, ratio);
                    batch_pulls += 1;
                    batch_units += to_units(reward);
                }
                ArmOutcome::Failure => {
                    let was = self.inner.is_quarantined(arm);
                    let now = self.inner.record_failure(arm);
                    self.table.record_failure(arm);
                    if now && !was {
                        self.table.quarantine(arm);
                    }
                }
            }
        }
        self.accounted_pulls[arm] += batch_pulls;
        self.accounted_units[arm] += batch_units;
        self.table.publish(arm, batch_pulls, batch_units);
        self.decisions_since_sync += 1;
        if self.decisions_since_sync >= self.sync_interval {
            self.sync();
        }
    }

    /// Fold all foreign deltas (outcomes other shards published since the
    /// last sync) into the local replica, and impose any quarantine
    /// verdicts from the table. Allocation-free; O(arms).
    pub fn sync(&mut self) {
        self.decisions_since_sync = 0;
        for arm in 0..self.accounted_pulls.len() {
            let g_pulls = self.table.arms[arm].pulls.load(Ordering::Acquire);
            let g_units = self.table.arms[arm].reward_units.load(Ordering::Relaxed);
            let dp = g_pulls - self.accounted_pulls[arm];
            if dp == 0 {
                continue;
            }
            // Clamp the unit delta to `dp` whole rewards: a concurrently
            // publishing shard may have its reward units visible before
            // the matching pull count (units are added first). The excess
            // stays unaccounted and is folded by the next sync, once its
            // pull is visible too.
            let du = g_units.saturating_sub(self.accounted_units[arm]);
            let cap = ((dp as u128) << 32).min(u64::MAX as u128) as u64;
            let du = du.min(cap);
            self.inner.fold_foreign(arm, dp, du as f64 / REWARD_UNIT);
            self.accounted_pulls[arm] = g_pulls;
            self.accounted_units[arm] += du;
        }
        let bits = self.table.quarantine_bits();
        if bits != 0 {
            for arm in 0..self.accounted_pulls.len() {
                if bits & (1u64 << arm) != 0 {
                    self.inner.quarantine_arm(arm);
                }
            }
        }
        self.table.syncs.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_codecs::CodecRegistry;

    fn arms() -> Vec<CodecId> {
        CodecRegistry::lossless_candidates()
    }

    fn config(seed: u64) -> SelectorConfig {
        SelectorConfig {
            epsilon: 0.1,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn single_shard_replica_is_bit_identical_to_centralized() {
        let table = SharedOutcomeTable::new(arms().len());
        let mut replica = ReplicaSelector::new(arms(), config(9), 0, &table, 1);
        let mut central = LosslessSelector::new(arms(), config(9));
        for step in 0..200u64 {
            let (arm_r, codec_r) = replica.select_arm();
            let (arm_c, codec_c) = central.select_arm();
            assert_eq!((arm_r, codec_r), (arm_c, codec_c), "step {step}");
            let outcomes = [
                ArmOutcome::Ratio((step % 7) as f64 / 10.0),
                ArmOutcome::Ratio((step % 3) as f64 / 5.0),
            ];
            replica.report_batch(arm_r, &outcomes);
            central.report_batch(arm_c, &outcomes);
        }
        // No foreign deltas exist, so the fold must not have perturbed
        // anything: estimates are bit-identical, not merely close.
        assert_eq!(replica.local().estimates(), central.estimates());
        assert_eq!(replica.local().pulls(), central.pulls());
        assert!(table.syncs() >= 200);
    }

    #[test]
    fn quarantine_propagates_between_replicas_at_sync() {
        let table = SharedOutcomeTable::new(arms().len());
        let mut a = ReplicaSelector::new(arms(), config(1), 0, &table, 1);
        let mut b = ReplicaSelector::new(arms(), config(1), 1, &table, 1);
        let victim = 2usize;
        // Shard A burns out the arm locally.
        a.report_batch(
            victim,
            &[
                ArmOutcome::Failure,
                ArmOutcome::Failure,
                ArmOutcome::Failure,
            ],
        );
        assert!(a.local().is_quarantined(victim));
        assert_ne!(table.quarantine_bits() & (1 << victim), 0);
        // Shard B has seen no failures of its own, but its next sync
        // imposes the verdict.
        assert!(!b.local().is_quarantined(victim));
        b.report_batch(0, &[ArmOutcome::Ratio(0.5)]);
        assert!(b.local().is_quarantined(victim));
        // B's failure streak for the victim stays untouched (shard-local).
        assert_eq!(table.failure_total(), 3);
    }

    #[test]
    fn foreign_folds_converge_to_global_posterior() {
        let roster = arms();
        let table = SharedOutcomeTable::new(roster.len());
        let mut a = ReplicaSelector::new(roster.clone(), config(5), 0, &table, 1);
        let mut b = ReplicaSelector::new(roster.clone(), config(5), 1, &table, 1);
        // Interleave prescribed outcomes across both replicas, then
        // compare against one centralized selector fed the same stream.
        let mut central = LosslessSelector::new(roster, config(5));
        let script: Vec<(usize, f64)> = (0..300)
            .map(|i| (i % 4, ((i * 37) % 100) as f64 / 100.0))
            .collect();
        for (i, &(arm, ratio)) in script.iter().enumerate() {
            let outcome = [ArmOutcome::Ratio(ratio)];
            if i % 2 == 0 {
                a.report_batch(arm, &outcome);
            } else {
                b.report_batch(arm, &outcome);
            }
            central.report_batch(arm, &outcome);
        }
        a.sync();
        b.sync();
        // Sample-average folds are exact up to the table's fixed-point
        // quantization of foreign contributions.
        for arm in 0..central.arms().len() {
            assert_eq!(a.local().pulls()[arm], central.pulls()[arm]);
            assert_eq!(b.local().pulls()[arm], central.pulls()[arm]);
            assert!(
                (a.local().estimates()[arm] - central.estimates()[arm]).abs() < 1e-6,
                "arm {arm}: {} vs {}",
                a.local().estimates()[arm],
                central.estimates()[arm]
            );
            assert!((b.local().estimates()[arm] - central.estimates()[arm]).abs() < 1e-6);
        }
    }

    #[test]
    fn resolve_threads_zero_means_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolve_threads(0), cores);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn pool_bound_accounts_for_stealing_workers() {
        // Regression for the per-shard re-derivation: with S shards, up to
        // S workers can simultaneously hold one of a shard's batches, so
        // the pool must exceed the naive per-shard port of the old global
        // bound (batch_cap + 1 worker + 1 producer) by S − 1.
        assert_eq!(shard_pool_size(1, 4), 6);
        assert_eq!(shard_pool_size(8, 1), 10);
        for s in 1..=8 {
            assert!(shard_pool_size(2, s) > 2 + 1 + 1 || s == 1);
        }
    }

    #[test]
    fn work_gate_wakes_parked_consumer_on_notify() {
        let gate = WorkGate::new();
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            let ticket = gate.epoch();
            gate.register_sleeper();
            // (re-sweep would go here and find nothing)
            scope.spawn(|| {
                // Give the consumer a moment to actually park.
                std::thread::sleep(Duration::from_millis(5));
                gate.notify();
            });
            gate.park(ticket);
        });
        // Far below the 50 ms safety timeout: the notify woke us.
        assert!(start.elapsed() < Duration::from_millis(45));
    }

    #[test]
    fn work_gate_notify_between_snapshot_and_park_prevents_sleep() {
        let gate = WorkGate::new();
        let ticket = gate.epoch();
        gate.register_sleeper();
        gate.notify(); // enqueue lands after the sweep started
        let start = std::time::Instant::now();
        gate.park(ticket); // epoch moved: must return immediately
        assert!(start.elapsed() < Duration::from_millis(45));
    }

    #[test]
    fn work_gate_cancel_park_balances_sleepers() {
        let gate = WorkGate::new();
        gate.register_sleeper();
        gate.cancel_park();
        // No sleepers: notify must stay on the cheap path and not deadlock.
        gate.notify();
        assert_eq!(gate.epoch(), 1);
    }

    #[test]
    fn reward_quantization_error_is_negligible() {
        for &r in &[0.0, 1e-9, 0.123456789, 0.5, 0.999999999, 1.0] {
            let units = to_units(r);
            assert!((units as f64 / REWARD_UNIT - r).abs() < 1e-9, "{r}");
        }
    }
}
