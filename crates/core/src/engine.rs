//! The multithreaded ingest → compress pipeline (§IV-C workflow, §V
//! scalability experiment), sharded per core.
//!
//! The pipeline runs **S independent shards** (S = worker threads): each
//! shard owns a bounded segment queue, a recycle pool sized by the
//! per-shard pigeonhole bound ([`crate::shard::shard_pool_size`]), and a
//! local [`ReplicaSelector`] that makes every arm decision lock-free from
//! its own copy of the bandit state. Replicas publish per-batch outcome
//! deltas into a [`SharedOutcomeTable`] with plain `fetch_add`s and fold
//! foreign deltas back every [`EngineConfig::sync_interval`] decisions —
//! there is **zero mutex traffic per segment** in the steady state, which
//! the report's `selector_lock_acquisitions` counter proves.
//!
//! The ingestion stage round-robins batches across shard queues (skipping
//! shards whose pool is momentarily empty, so a slow shard cannot stall
//! ingest), and workers **steal** from foreign shard queues when their own
//! runs dry, so a shard pinned on an expensive or quarantined arm cannot
//! idle the others. A stolen batch is decided by the *stealing* worker's
//! replica and its buffers return to the *home* shard's recycle pool.
//!
//! Segments move in batches of [`EngineConfig::batch_segments`] (K): one
//! arm decision held sticky per batch, outcomes accumulated locally and
//! reported through [`ReplicaSelector::report_batch`]. S = 1 reproduces
//! the centralized selector bit for bit (single replica, same seed, no
//! foreign deltas), and K = 1 on top of that reproduces per-segment
//! scheduling exactly — the bandit-exact mode the equivalence tests pin.

use crate::error::{AdaEdgeError, Result};
use crate::selector::{ArmOutcome, SelectorConfig};
use crate::shard::{
    resolve_threads, shard_pool_size, ReplicaSelector, SharedOutcomeTable, WorkGate,
};
use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch};
use adaedge_datasets::SegmentSource;
use crossbeam::channel::{self, TryRecvError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of compression worker threads — one pipeline shard each.
    /// `0` means one per core (`std::thread::available_parallelism`).
    pub n_compression_threads: usize,
    /// Uncompressed-buffer capacity in segments, split evenly across the
    /// shard queues; ingestion that finds a shard's queue full counts a
    /// spill.
    pub buffer_segments: usize,
    /// Lossless candidate arms, replicated into every shard's selector.
    pub lossless_arms: Vec<CodecId>,
    /// MAB hyper-parameters (each shard's replica derives its RNG stream
    /// from `selector.seed` and its shard id; shard 0 uses the seed
    /// unchanged).
    pub selector: SelectorConfig,
    /// Dataset decimal precision.
    pub precision: u8,
    /// Segments per scheduling batch (K). Workers pull K segments per
    /// queue op, keep the selected arm sticky across the batch, and
    /// report the K accumulated rewards in one replica update. `1`
    /// (the default) is the bandit-exact mode: selection, reward order and
    /// queue traffic are identical to per-segment scheduling.
    pub batch_segments: usize,
    /// Arm decisions between delta-sync folds: how often each shard's
    /// replica pulls the other shards' published outcomes into its local
    /// estimates. Lower = fresher cross-shard state, more fold work;
    /// `1` folds after every decision. With a single shard the value is
    /// irrelevant (there are never foreign deltas).
    pub sync_interval: usize,
    /// Deterministic fault injection for containment tests: every compress
    /// call for this codec panics inside the workers (see
    /// [`CodecRegistry::inject_compress_panic`]). Production configurations
    /// leave this `None`.
    pub fault_injection: Option<CodecId>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            n_compression_threads: 1,
            buffer_segments: 64,
            lossless_arms: CodecRegistry::lossless_candidates(),
            selector: SelectorConfig::default(),
            precision: 4,
            batch_segments: 1,
            sync_interval: DEFAULT_SYNC_INTERVAL,
            fault_injection: None,
        }
    }
}

/// Default decisions-between-folds: frequent enough that quarantine and
/// posterior drift propagate within a few hundred segments at typical K,
/// rare enough that the O(arms) fold stays invisible in profiles.
pub const DEFAULT_SYNC_INTERVAL: usize = 32;

/// A batch of recycled segment buffers moving through one shard's queues
/// as a unit. `home` names the shard whose recycle pool owns the buffers —
/// a stolen batch is processed by a foreign worker but its buffers always
/// return home, keeping the per-shard pool accounting intact.
struct SegmentBatch {
    home: usize,
    segs: Vec<Vec<f64>>,
}

/// Seed shard `home`'s recycle channel with `pool` batches of `k` segment
/// buffers each.
fn seed_recycle_pool(
    recycle_tx: &channel::Sender<SegmentBatch>,
    home: usize,
    pool: usize,
    k: usize,
    segment_len: usize,
) -> Result<()> {
    for _ in 0..pool {
        let batch = SegmentBatch {
            home,
            segs: (0..k).map(|_| Vec::with_capacity(segment_len)).collect(),
        };
        recycle_tx
            .send(batch)
            .map_err(|_| AdaEdgeError::WorkerFailed {
                stage: "recycle pool seeding",
            })?;
    }
    Ok(())
}

/// Refill a recycled batch with up to `remaining` fresh segments.
/// Truncation below `k` only happens on the final partial batch, so the
/// steady state never sheds buffers.
fn fill_batch(source: &mut dyn SegmentSource, batch: &mut SegmentBatch, remaining: usize) {
    batch.segs.truncate(batch.segs.len().min(remaining));
    for seg in batch.segs.iter_mut() {
        source.next_segment_into(seg);
    }
}

/// One non-blocking sweep for the worker of shard `me`: its own queue
/// first, then a steal pass over foreign queues, starting just past its
/// own shard so contending stealers fan out over different victims.
/// `open` tracks queues not yet known dead.
fn try_take(
    me: usize,
    rxs: &[channel::Receiver<SegmentBatch>],
    open: &mut [bool],
    table: &SharedOutcomeTable,
) -> Option<SegmentBatch> {
    for off in 0..rxs.len() {
        let j = (me + off) % rxs.len();
        if !open[j] {
            continue;
        }
        match rxs[j].try_recv() {
            Ok(b) => {
                if j != me {
                    table.count_steal();
                }
                return Some(b);
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => open[j] = false,
        }
    }
    None
}

/// Receive the next batch for the worker of shard `me`: a non-blocking
/// sweep over every queue, then a parked wait on `gate` that any enqueue
/// ends immediately — no worker ever sleeps through an arrival on a
/// foreign queue (the old scheme blocked on one queue with a 1 ms rescan
/// timeout, adding up to a millisecond of latency per stolen batch).
/// Returns `None` once every queue is disconnected and drained.
fn recv_or_steal(
    me: usize,
    rxs: &[channel::Receiver<SegmentBatch>],
    open: &mut [bool],
    table: &SharedOutcomeTable,
    gate: &WorkGate,
) -> Option<SegmentBatch> {
    loop {
        if let Some(b) = try_take(me, rxs, open, table) {
            return Some(b);
        }
        if !open.iter().any(|&o| o) {
            return None;
        }
        // Everything open is momentarily empty. Register as a sleeper
        // *before* the confirmation sweep: an enqueue that lands after the
        // sweep either sees the registration (and notifies) or bumps the
        // epoch before `park` re-checks it — no arrival can slip through.
        gate.register_sleeper();
        let ticket = gate.epoch();
        if let Some(b) = try_take(me, rxs, open, table) {
            gate.cancel_park();
            return Some(b);
        }
        if !open.iter().any(|&o| o) {
            gate.cancel_park();
            return None;
        }
        gate.park(ticket);
    }
}

/// Take a recycled batch for the producer, sweeping the shard pools from
/// the round-robin cursor and blocking on the cursor shard only when every
/// pool is momentarily drained (the per-shard pool bound guarantees a
/// batch comes back). Advances the cursor past the shard that supplied the
/// batch. Returns `None` when the pipeline has shut down.
fn acquire_recycled(
    next: &mut usize,
    recycle_rxs: &[channel::Receiver<SegmentBatch>],
) -> Option<SegmentBatch> {
    let s = recycle_rxs.len();
    for off in 0..s {
        let sh = (*next + off) % s;
        if let Ok(b) = recycle_rxs[sh].try_recv() {
            *next = (sh + 1) % s;
            return Some(b);
        }
    }
    match recycle_rxs[*next].recv() {
        Ok(b) => {
            *next = (*next + 1) % s;
            Some(b)
        }
        Err(_) => None,
    }
}

/// Aggregate pipeline results.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Segments compressed.
    pub segments: u64,
    /// Data points processed.
    pub points: u64,
    /// Raw bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
    /// Wall-clock runtime.
    pub elapsed_seconds: f64,
    /// Achieved throughput in points per second.
    pub points_per_sec: f64,
    /// Times the ingestion stage found a shard queue full.
    pub spills: u64,
    /// How often each codec was selected.
    pub codec_counts: HashMap<CodecId, u64>,
    /// Contained codec failures (errors or panics caught inside workers).
    /// Each failed segment was degraded to Raw rather than lost.
    pub codec_failures: u64,
    /// Arms quarantined (on any shard) after repeated consecutive
    /// failures; verdicts propagate to every shard at its next sync.
    pub quarantined: Vec<CodecId>,
    /// Pipeline shards (= worker threads) the run used.
    pub shards: usize,
    /// Batches a worker took from a foreign shard's queue.
    pub stolen_batches: u64,
    /// Delta-sync folds performed across all shard replicas.
    pub selector_syncs: u64,
    /// Mutex acquisitions on the per-segment selector hot path. The
    /// sharded engine has none — this is the lock-freedom proof the
    /// shard-equivalence suite asserts stays 0.
    pub selector_lock_acquisitions: u64,
}

/// Run `n_segments` from `source` through the sharded pipeline and report
/// aggregate throughput.
///
/// Codec errors and panics are contained per segment (the segment is
/// stored Raw and the arm penalized); `Err(AdaEdgeError::WorkerFailed)`
/// is returned only if a worker thread dies outside that contained
/// region, or a recycle pool cannot be seeded.
pub fn run_pipeline(
    source: &mut dyn SegmentSource,
    n_segments: usize,
    config: &EngineConfig,
) -> Result<EngineReport> {
    let mut reg = CodecRegistry::new(config.precision);
    if let Some(id) = config.fault_injection {
        reg.inject_compress_panic(id);
    }
    let reg = reg;
    let n_shards = resolve_threads(config.n_compression_threads);
    let buffer_cap = config.buffer_segments.max(1);
    let k = config.batch_segments.max(1);
    let sync_interval = config.sync_interval.max(1);
    // The queues are bounded in *batches*; `buffer_segments` keeps its
    // meaning (segments of in-flight buffer) by dividing through K and
    // splitting the result across the shard queues. The floor of two
    // batches per shard lets a worker drain one batch while the producer
    // parks the next — a single-slot queue serializes the two stages.
    let batch_cap = buffer_cap.div_ceil(k).div_ceil(n_shards).max(2);
    let pool = shard_pool_size(batch_cap, n_shards);
    let table = SharedOutcomeTable::new(config.lossless_arms.len());
    let gate = WorkGate::new();

    let mut txs = Vec::with_capacity(n_shards);
    let mut rxs = Vec::with_capacity(n_shards);
    let mut recycle_txs = Vec::with_capacity(n_shards);
    let mut recycle_rxs = Vec::with_capacity(n_shards);
    for home in 0..n_shards {
        let (tx, rx) = channel::bounded::<SegmentBatch>(batch_cap);
        let (rtx, rrx) = channel::bounded::<SegmentBatch>(pool);
        seed_recycle_pool(&rtx, home, pool, k, source.segment_len())?;
        txs.push(tx);
        rxs.push(rx);
        recycle_txs.push(rtx);
        recycle_rxs.push(rrx);
    }
    let bytes_out = AtomicU64::new(0);
    let spills = AtomicU64::new(0);
    let segment_points = source.segment_len() as u64;

    let start = Instant::now();
    let mut codec_counts: HashMap<CodecId, u64> = HashMap::new();
    std::thread::scope(|scope| -> Result<()> {
        let mut workers = Vec::new();
        for me in 0..n_shards {
            let all_rxs = rxs.to_vec();
            let all_recycle_txs = recycle_txs.to_vec();
            let reg = &reg;
            let table = &table;
            let gate = &gate;
            let bytes_out = &bytes_out;
            let arms = config.lossless_arms.clone();
            let selector_config = config.selector;
            workers.push(scope.spawn(move || {
                let mut replica =
                    ReplicaSelector::new(arms, selector_config, me, table, sync_interval);
                let mut scratch = CodecScratch::new();
                let mut local_counts: HashMap<CodecId, u64> = HashMap::new();
                let mut outcomes: Vec<ArmOutcome> = Vec::with_capacity(k);
                let mut open = vec![true; n_shards];
                while let Some(batch) = recv_or_steal(me, &all_rxs, &mut open, table, gate) {
                    // One lock-free decision per batch, arm held sticky;
                    // outcomes accumulate locally and publish as one
                    // atomic delta.
                    let (arm, codec) = replica.select_arm();
                    outcomes.clear();
                    for data in &batch.segs {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            reg.compress_into(codec, data, &mut scratch)
                                .map(|b| (b.ratio(), b.compressed_bytes()))
                        }));
                        match outcome {
                            Ok(Ok((ratio, bytes))) => {
                                bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
                                outcomes.push(ArmOutcome::Ratio(ratio));
                                *local_counts.entry(codec).or_insert(0) += 1;
                            }
                            // Codec error or caught panic: contain it,
                            // penalize the arm, and degrade this segment to
                            // Raw so no data is lost. (A panicked compress
                            // may have left the arena mid-write; Raw
                            // rebuilds its output from scratch, so the
                            // fallback is unaffected.)
                            _ => {
                                outcomes.push(ArmOutcome::Failure);
                                if let Ok(block) =
                                    reg.compress_into(CodecId::Raw, data, &mut scratch)
                                {
                                    bytes_out.fetch_add(
                                        block.compressed_bytes() as u64,
                                        Ordering::Relaxed,
                                    );
                                    *local_counts.entry(CodecId::Raw).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                    replica.report_batch(arm, &outcomes);
                    // Hand the drained batch back to its home shard's pool
                    // (fails harmlessly once ingestion is done).
                    let home = batch.home;
                    let _ = all_recycle_txs[home].send(batch);
                }
                // Final fold so the replica's view is complete at exit.
                replica.sync();
                local_counts
            }));
        }
        drop(rxs);
        drop(recycle_txs);

        // Ingestion stage (this thread): refill a recycled batch from the
        // least-backlogged pool the round-robin sweep finds, enqueue it on
        // its home shard. A failed `try_send` is the spill signal — it
        // observes fullness and enqueues in one channel operation; every
        // segment in the delayed batch counts as spilled.
        let mut next = 0usize;
        let mut remaining = n_segments;
        while remaining > 0 {
            let Some(mut batch) = acquire_recycled(&mut next, &recycle_rxs) else {
                break;
            };
            fill_batch(source, &mut batch, remaining);
            remaining -= batch.segs.len();
            let home = batch.home;
            match txs[home].try_send(batch) {
                Ok(()) => gate.notify(),
                Err(channel::TrySendError::Full(batch)) => {
                    spills.fetch_add(batch.segs.len() as u64, Ordering::Relaxed);
                    if txs[home].send(batch).is_err() {
                        break;
                    }
                    gate.notify();
                }
                Err(channel::TrySendError::Disconnected(_)) => break,
            }
        }
        drop(txs);
        drop(recycle_rxs);
        // Wake any parked worker so it observes the disconnected queues.
        gate.notify();

        // Join every worker before deciding the outcome so a single dead
        // thread cannot leave the scope with unjoined panics.
        let mut lost_worker = false;
        for w in workers {
            match w.join() {
                Ok(local) => {
                    for (codec, count) in local {
                        *codec_counts.entry(codec).or_insert(0) += count;
                    }
                }
                Err(_) => lost_worker = true,
            }
        }
        if lost_worker {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "compression worker",
            });
        }
        Ok(())
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let points = n_segments as u64 * segment_points;
    Ok(EngineReport {
        segments: n_segments as u64,
        points,
        bytes_in: points * 8,
        bytes_out: bytes_out.load(Ordering::Relaxed),
        elapsed_seconds: elapsed,
        points_per_sec: points as f64 / elapsed.max(1e-9),
        spills: spills.load(Ordering::Relaxed),
        codec_counts,
        codec_failures: table.failure_total(),
        quarantined: table.quarantined_arms(&config.lossless_arms),
        shards: n_shards,
        stolen_batches: table.stolen_batches(),
        selector_syncs: table.syncs(),
        selector_lock_acquisitions: table.selector_locks(),
    })
}

/// Offline-mode engine configuration: the paper's thread layout
/// (ingestion, compression, recoding, evaluation; reward evaluation runs
/// inside the recoding step here), sharded like [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct OfflineEngineConfig {
    /// Compression worker threads — one pipeline shard each; `0` means one
    /// per core.
    pub n_compression_threads: usize,
    /// Uncompressed-buffer capacity in segments, split across shards.
    pub buffer_segments: usize,
    /// Hard storage budget in bytes.
    pub storage_budget_bytes: usize,
    /// Recoding trigger fraction (paper: 0.8).
    pub recode_threshold: f64,
    /// Lossless candidate arms.
    pub lossless_arms: Vec<CodecId>,
    /// Lossy candidate arms.
    pub lossy_arms: Vec<CodecId>,
    /// MAB hyper-parameters.
    pub selector: SelectorConfig,
    /// Workload target for the recoding MABs.
    pub target: crate::targets::OptimizationTarget,
    /// Dataset decimal precision.
    pub precision: u8,
    /// Segments per scheduling batch (K), as in
    /// [`EngineConfig::batch_segments`]. Also bounds how many recode
    /// victims the recoding thread drains per pass.
    pub batch_segments: usize,
    /// Arm decisions between delta-sync folds, as in
    /// [`EngineConfig::sync_interval`].
    pub sync_interval: usize,
}

impl OfflineEngineConfig {
    /// Defaults for a given budget and target.
    pub fn new(storage_budget_bytes: usize, target: crate::targets::OptimizationTarget) -> Self {
        Self {
            n_compression_threads: 1,
            buffer_segments: 64,
            storage_budget_bytes,
            recode_threshold: 0.8,
            lossless_arms: CodecRegistry::lossless_candidates(),
            lossy_arms: CodecRegistry::lossy_candidates(),
            selector: SelectorConfig::offline(),
            target,
            precision: 4,
            batch_segments: 1,
            sync_interval: DEFAULT_SYNC_INTERVAL,
        }
    }
}

/// Results of an offline engine run.
#[derive(Debug, Clone)]
pub struct OfflineEngineReport {
    /// Segments stored.
    pub segments: u64,
    /// Data points ingested.
    pub points: u64,
    /// Final stored bytes.
    pub stored_bytes: usize,
    /// Final utilization of the budget.
    pub utilization: f64,
    /// Total recoding passes performed by the recoding thread.
    pub recodes: u64,
    /// Segments dropped because the budget could not be met in time.
    pub drops: u64,
    /// Wall-clock runtime.
    pub elapsed_seconds: f64,
    /// Achieved throughput in points/s.
    pub points_per_sec: f64,
    /// Contained codec failures (errors or panics caught inside workers).
    pub codec_failures: u64,
    /// Lossless arms quarantined (on any shard) after repeated failures.
    pub quarantined: Vec<CodecId>,
    /// Pipeline shards (= worker threads) the run used.
    pub shards: usize,
    /// Batches a worker took from a foreign shard's queue.
    pub stolen_batches: u64,
    /// Delta-sync folds performed across all shard replicas.
    pub selector_syncs: u64,
    /// Mutex acquisitions on the per-segment selector hot path (0: the
    /// lossless replicas are lock-free and the recoding thread *owns* its
    /// banded lossy selector outright).
    pub selector_lock_acquisitions: u64,
}

/// Run the multithreaded offline pipeline: ingestion (caller thread) →
/// sharded queues → compression workers → shared budgeted store, with a
/// dedicated recoding thread draining space via the banded lossy MAB it
/// owns outright (no selector mutex anywhere).
///
/// Codec failures are contained per segment exactly as in
/// [`run_pipeline`]; `Err(AdaEdgeError::WorkerFailed)` means a worker or
/// the recoding thread died outside the contained region.
pub fn run_offline_pipeline(
    source: &mut dyn SegmentSource,
    n_segments: usize,
    config: &OfflineEngineConfig,
) -> Result<OfflineEngineReport> {
    use crate::selector::BandedLossySelector;
    use crate::targets::RewardEvaluator;
    use adaedge_storage::SegmentStore;

    let reg = CodecRegistry::new(config.precision);
    let store = Mutex::new(SegmentStore::with_budget(config.storage_budget_bytes));
    let evaluator = RewardEvaluator::new(config.target.clone(), None, 0);
    // The recoding thread is the banded lossy selector's only user, so it
    // owns the selector outright — no mutex, no contention.
    let mut lossy = BandedLossySelector::new(config.lossy_arms.clone(), config.selector, evaluator);
    let n_shards = resolve_threads(config.n_compression_threads);
    let buffer_cap = config.buffer_segments.max(1);
    let workers_done = std::sync::atomic::AtomicBool::new(false);
    // Signals any change to the store's occupancy: workers wake the recoder
    // after a put, the recoder wakes blocked workers after freeing space, and
    // the ingestion thread wakes everyone at shutdown. Waits pair with the
    // store mutex; short timeouts guard the flag-set/notify window.
    let store_cv = Condvar::new();
    let recodes = AtomicU64::new(0);
    let drops = AtomicU64::new(0);
    let k = config.batch_segments.max(1);
    let sync_interval = config.sync_interval.max(1);
    // Two-batch floor per shard, as in `run_pipeline`.
    let batch_cap = buffer_cap.div_ceil(k).div_ceil(n_shards).max(2);
    // Same per-shard recycle pools as `run_pipeline`.
    let pool = shard_pool_size(batch_cap, n_shards);
    let table = SharedOutcomeTable::new(config.lossless_arms.len());
    let gate = WorkGate::new();
    let mut txs = Vec::with_capacity(n_shards);
    let mut rxs = Vec::with_capacity(n_shards);
    let mut recycle_txs = Vec::with_capacity(n_shards);
    let mut recycle_rxs = Vec::with_capacity(n_shards);
    for home in 0..n_shards {
        let (tx, rx) = channel::bounded::<SegmentBatch>(batch_cap);
        let (rtx, rrx) = channel::bounded::<SegmentBatch>(pool);
        seed_recycle_pool(&rtx, home, pool, k, source.segment_len())?;
        txs.push(tx);
        rxs.push(rx);
        recycle_txs.push(rtx);
        recycle_rxs.push(rrx);
    }
    let segment_points = source.segment_len() as u64;
    let threshold = config.recode_threshold;
    let budget = config.storage_budget_bytes;

    let start = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        // Recoding thread: frees space whenever occupancy crosses θ·budget.
        // Victims are drained in batches of up to K per pass: one store
        // lock to snapshot them, recodes through the thread-owned selector,
        // one store lock to commit the winners.
        let recoder = {
            let store = &store;
            let reg = &reg;
            let workers_done = &workers_done;
            let recodes = &recodes;
            let store_cv = &store_cv;
            scope.spawn(move || loop {
                // Sleep until occupancy crosses θ·budget or the pipeline
                // drains; puts notify the condvar, so no busy-wait.
                {
                    let mut guard = store.lock();
                    while !guard.over_threshold(threshold) {
                        if workers_done.load(Ordering::Acquire) {
                            return;
                        }
                        store_cv.wait_for(&mut guard, Duration::from_millis(50));
                    }
                }
                // Snapshot up to K victims under one lock; recode outside.
                let victims = {
                    let guard = store.lock();
                    let raw_bytes: usize = guard.iter().map(|s| s.n_points() * 8).sum();
                    let r_req = if raw_bytes == 0 {
                        0.0
                    } else {
                        (threshold * budget as f64 / raw_bytes as f64).min(1.0)
                    };
                    let mut picks = Vec::new();
                    let mut fallback = None;
                    for id in guard.victim_order() {
                        if picks.len() >= k {
                            break;
                        }
                        if let Some(seg) = guard.peek(id) {
                            if let Some(block) = seg.block() {
                                if seg.ratio() > r_req {
                                    picks.push((id, block.clone(), seg.ratio() * 0.5));
                                } else if fallback.is_none() {
                                    fallback = Some((id, block.clone(), seg.ratio() * 0.5));
                                }
                            }
                        }
                    }
                    if picks.is_empty() {
                        // No victim clears the required ratio: recode the
                        // best-effort fallback alone, as the per-segment
                        // scheduler did.
                        picks.extend(fallback);
                    }
                    picks
                };
                if victims.is_empty() {
                    // Nothing recodable yet; wait for the store to change.
                    let mut guard = store.lock();
                    store_cv.wait_for(&mut guard, Duration::from_millis(5));
                    continue;
                }
                // The selector is thread-owned: recodes report their
                // rewards directly, no lock to acquire or batch around.
                let results: Vec<_> = victims
                    .iter()
                    .map(|(_, block, target_ratio)| lossy.recode(reg, block, None, *target_ratio))
                    .collect();
                let mut committed = false;
                {
                    let mut guard = store.lock();
                    for ((id, block, _), result) in victims.iter().zip(results) {
                        let old_bytes = block.compressed_bytes();
                        let Ok(sel) = result else { continue };
                        if sel.block.compressed_bytes() >= old_bytes {
                            continue;
                        }
                        // The segment may have been touched meanwhile; only
                        // commit if it still holds the block we recoded.
                        let unchanged = guard
                            .peek(*id)
                            .and_then(|s| s.block())
                            .map(|b| b.compressed_bytes() == old_bytes)
                            .unwrap_or(false);
                        if unchanged && guard.replace(*id, sel.block).is_ok() {
                            recodes.fetch_add(1, Ordering::Relaxed);
                            committed = true;
                        }
                    }
                }
                if committed {
                    // Space was freed; wake any worker blocked on put.
                    store_cv.notify_all();
                } else {
                    // No victim made progress this pass; back off briefly
                    // instead of spinning.
                    let mut guard = store.lock();
                    store_cv.wait_for(&mut guard, Duration::from_millis(1));
                }
            })
        };

        // Compression workers, one shard each.
        let mut workers = Vec::new();
        for me in 0..n_shards {
            let all_rxs = rxs.to_vec();
            let all_recycle_txs = recycle_txs.to_vec();
            let reg = &reg;
            let table = &table;
            let gate = &gate;
            let store = &store;
            let store_cv = &store_cv;
            let drops = &drops;
            let arms = config.lossless_arms.clone();
            let selector_config = config.selector;
            workers.push(scope.spawn(move || {
                let mut replica =
                    ReplicaSelector::new(arms, selector_config, me, table, sync_interval);
                let mut scratch = CodecScratch::new();
                let mut outcomes: Vec<ArmOutcome> = Vec::with_capacity(k);
                let mut blocks = Vec::with_capacity(k);
                let mut open = vec![true; n_shards];
                while let Some(batch) = recv_or_steal(me, &all_rxs, &mut open, table, gate) {
                    // One lock-free decision per batch (arm held sticky),
                    // one replica report, then the store puts.
                    let (arm, codec) = replica.select_arm();
                    outcomes.clear();
                    blocks.clear();
                    for data in &batch.segs {
                        // The store takes ownership, so the scratch-backed
                        // block is materialized once inside the contained
                        // region.
                        let compressed = catch_unwind(AssertUnwindSafe(|| {
                            reg.compress_into(codec, data, &mut scratch)
                                .map(|b| (b.ratio(), b.to_block()))
                        }));
                        match compressed {
                            Ok(Ok((ratio, block))) => {
                                outcomes.push(ArmOutcome::Ratio(ratio));
                                blocks.push(block);
                            }
                            // Codec error or caught panic: penalize the arm
                            // and degrade the segment to Raw instead of
                            // losing it.
                            _ => {
                                outcomes.push(ArmOutcome::Failure);
                                match reg.compress_into(CodecId::Raw, data, &mut scratch) {
                                    Ok(b) => blocks.push(b.to_block()),
                                    Err(_) => {
                                        drops.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    }
                    replica.report_batch(arm, &outcomes);
                    let home = batch.home;
                    let _ = all_recycle_txs[home].send(batch);
                    for block in blocks.drain(..) {
                        // Wait (bounded) for the recoder to clear space,
                        // sleeping on the condvar between attempts instead
                        // of spinning.
                        let mut stored = false;
                        let deadline = Instant::now() + Duration::from_secs(2);
                        {
                            let mut guard = store.lock();
                            loop {
                                if guard.put_compressed(block.clone()).is_ok() {
                                    stored = true;
                                    break;
                                }
                                if Instant::now() >= deadline {
                                    break;
                                }
                                store_cv.wait_for(&mut guard, Duration::from_millis(10));
                            }
                        }
                        if stored {
                            // The store grew; the recoder may now be over θ.
                            store_cv.notify_all();
                        } else {
                            drops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                replica.sync();
            }));
        }
        drop(rxs);
        drop(recycle_txs);

        let mut next = 0usize;
        let mut remaining = n_segments;
        while remaining > 0 {
            let Some(mut batch) = acquire_recycled(&mut next, &recycle_rxs) else {
                break;
            };
            fill_batch(source, &mut batch, remaining);
            remaining -= batch.segs.len();
            let home = batch.home;
            if txs[home].send(batch).is_err() {
                break;
            }
            gate.notify();
        }
        drop(txs);
        drop(recycle_rxs);
        // Wake any parked worker so it observes the disconnected queues.
        gate.notify();
        // Join everything before deciding the outcome so the scope never
        // exits with an unjoined panicked thread.
        let mut lost_worker = false;
        for w in workers {
            if w.join().is_err() {
                lost_worker = true;
            }
        }
        workers_done.store(true, Ordering::Release);
        store_cv.notify_all();
        let lost_recoder = recoder.join().is_err();
        if lost_worker {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "compression worker",
            });
        }
        if lost_recoder {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "recoding thread",
            });
        }
        Ok(())
    })?;

    let elapsed = start.elapsed().as_secs_f64();
    let guard = store.lock();
    let points = n_segments as u64 * segment_points;
    Ok(OfflineEngineReport {
        segments: guard.len() as u64,
        points,
        stored_bytes: guard.used_bytes(),
        utilization: guard.utilization(),
        recodes: recodes.load(Ordering::Relaxed),
        drops: drops.load(Ordering::Relaxed),
        elapsed_seconds: elapsed,
        points_per_sec: points as f64 / elapsed.max(1e-9),
        codec_failures: table.failure_total(),
        quarantined: table.quarantined_arms(&config.lossless_arms),
        shards: n_shards,
        stolen_batches: table.stolen_batches(),
        selector_syncs: table.syncs(),
        selector_lock_acquisitions: table.selector_locks(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_datasets::SineStream;

    fn run(threads: usize, segments: usize) -> EngineReport {
        let mut source = SineStream::new(1000, 0.1, 4, 7);
        let config = EngineConfig {
            n_compression_threads: threads,
            ..Default::default()
        };
        run_pipeline(&mut source, segments, &config).expect("pipeline")
    }

    #[test]
    fn processes_all_segments() {
        let report = run(2, 50);
        assert_eq!(report.segments, 50);
        assert_eq!(report.points, 50_000);
        assert_eq!(report.bytes_in, 400_000);
        assert!(report.bytes_out > 0);
        assert!(report.bytes_out < report.bytes_in);
        let total: u64 = report.codec_counts.values().sum();
        assert_eq!(total, 50);
        assert_eq!(report.codec_failures, 0);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.shards, 2);
        assert_eq!(report.selector_lock_acquisitions, 0);
    }

    #[test]
    fn injected_codec_panic_is_contained() {
        let mut source = SineStream::new(1000, 0.1, 4, 7);
        let config = EngineConfig {
            n_compression_threads: 2,
            lossless_arms: vec![CodecId::Gzip, CodecId::Snappy],
            fault_injection: Some(CodecId::Gzip),
            ..Default::default()
        };
        let report = run_pipeline(&mut source, 60, &config).expect("faulty arm must be contained");
        // Every segment still lands somewhere: the healthy arm or Raw.
        let total: u64 = report.codec_counts.values().sum();
        assert_eq!(total, 60);
        assert_eq!(report.codec_counts.get(&CodecId::Gzip), None);
        // The failures were observed, routed to Raw, and the arm ended up
        // quarantined on at least one shard (optimistic init keeps
        // re-picking it until then); the verdict lands in the report via
        // the shared table.
        assert!(report.codec_failures >= 3, "{}", report.codec_failures);
        assert_eq!(
            report.codec_counts.get(&CodecId::Raw).copied().unwrap_or(0),
            report.codec_failures
        );
        assert_eq!(report.quarantined, vec![CodecId::Gzip]);
    }

    #[test]
    fn throughput_is_positive_and_reported() {
        let report = run(1, 20);
        assert!(report.points_per_sec > 0.0);
        assert!(report.elapsed_seconds > 0.0);
        assert_eq!(report.shards, 1);
        // A single shard can never steal from itself.
        assert_eq!(report.stolen_batches, 0);
    }

    #[test]
    fn threads_zero_resolves_to_available_parallelism() {
        let mut source = SineStream::new(500, 0.1, 4, 7);
        let config = EngineConfig {
            n_compression_threads: 0,
            ..Default::default()
        };
        let report = run_pipeline(&mut source, 10, &config).expect("pipeline");
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(report.shards, cores);
        assert_eq!(report.segments, 10);
    }

    #[test]
    fn offline_engine_bounds_space_under_pressure() {
        use crate::query::AggKind;
        use crate::targets::OptimizationTarget;
        let mut source = SineStream::new(1000, 0.3, 4, 3);
        let config = OfflineEngineConfig {
            storage_budget_bytes: 60_000,
            ..OfflineEngineConfig::new(60_000, OptimizationTarget::agg(AggKind::Sum))
        };
        let report = run_offline_pipeline(&mut source, 100, &config).expect("pipeline");
        assert_eq!(report.segments + report.drops, 100);
        assert!(report.drops <= 2, "drops {}", report.drops);
        assert!(report.utilization <= 1.0 + 1e-9);
        assert!(report.recodes > 0, "recoder never ran");
        assert!(report.stored_bytes <= 60_000);
        assert_eq!(report.selector_lock_acquisitions, 0);
    }

    #[test]
    fn offline_engine_without_pressure_keeps_everything_lossless() {
        use crate::query::AggKind;
        use crate::targets::OptimizationTarget;
        let mut source = SineStream::new(500, 0.1, 4, 5);
        let config = OfflineEngineConfig::new(10 << 20, OptimizationTarget::agg(AggKind::Sum));
        let report = run_offline_pipeline(&mut source, 30, &config).expect("pipeline");
        assert_eq!(report.segments, 30);
        assert_eq!(report.drops, 0);
        assert_eq!(report.recodes, 0);
        assert_eq!(report.codec_failures, 0);
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn multiple_threads_do_not_lose_segments() {
        for threads in [1, 2, 4, 8] {
            let report = run(threads, 40);
            let total: u64 = report.codec_counts.values().sum();
            assert_eq!(total, 40, "{threads} threads");
            assert_eq!(report.shards, threads);
            assert_eq!(report.selector_lock_acquisitions, 0);
        }
    }
}
