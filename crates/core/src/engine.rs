//! The multithreaded ingest → compress pipeline (§IV-C workflow, §V
//! scalability experiment).
//!
//! An ingestion stage pushes fixed-size raw segments into a bounded
//! uncompressed buffer (a crossbeam channel); `n_compression_threads`
//! workers pop segments, consult the shared MAB selector, compress outside
//! the selector lock, and report the reward back. A full buffer counts as
//! a spill-to-disk event (the paper flushes to disk when the uncompressed
//! buffer overflows).
//!
//! Segments move through the channels in batches of
//! [`EngineConfig::batch_segments`] (K): the ingestion stage fills K
//! recycled segment buffers per channel send, and a worker selects one arm,
//! holds it sticky across the whole batch, accumulates the K rewards
//! locally and reports them in a single
//! [`LosslessSelector::report_batch`] call — one channel op and two lock
//! acquisitions per *batch* instead of per segment. K = 1 reproduces the
//! per-segment scheduling bit-for-bit (the bandit-exact mode the regret
//! tests rely on).

use crate::error::{AdaEdgeError, Result};
use crate::selector::{ArmOutcome, LosslessSelector, SelectorConfig};
use adaedge_codecs::{CodecId, CodecRegistry, CodecScratch};
use adaedge_datasets::SegmentSource;
use crossbeam::channel;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of compression worker threads (the paper scales 1 → 8).
    pub n_compression_threads: usize,
    /// Uncompressed-buffer capacity in segments; ingestion that finds the
    /// buffer full counts a spill.
    pub buffer_segments: usize,
    /// Lossless candidate arms for the shared selector.
    pub lossless_arms: Vec<CodecId>,
    /// MAB hyper-parameters.
    pub selector: SelectorConfig,
    /// Dataset decimal precision.
    pub precision: u8,
    /// Segments per scheduling batch (K). Workers pull K segments per
    /// channel op, keep the selected arm sticky across the batch, and
    /// report the K accumulated rewards under one selector lock. `1`
    /// (the default) is the bandit-exact mode: selection, reward order and
    /// channel traffic are identical to per-segment scheduling.
    pub batch_segments: usize,
    /// Deterministic fault injection for containment tests: every compress
    /// call for this codec panics inside the workers (see
    /// [`CodecRegistry::inject_compress_panic`]). Production configurations
    /// leave this `None`.
    pub fault_injection: Option<CodecId>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            n_compression_threads: 1,
            buffer_segments: 64,
            lossless_arms: CodecRegistry::lossless_candidates(),
            selector: SelectorConfig::default(),
            precision: 4,
            batch_segments: 1,
            fault_injection: None,
        }
    }
}

/// A batch of recycled segment buffers moving through the pipeline
/// channels as one unit.
type SegmentBatch = Vec<Vec<f64>>;

/// Seed a recycle channel with `pool` batches of `k` segment buffers each.
fn seed_recycle_pool(
    recycle_tx: &channel::Sender<SegmentBatch>,
    pool: usize,
    k: usize,
    segment_len: usize,
) -> Result<()> {
    for _ in 0..pool {
        let batch: SegmentBatch = (0..k).map(|_| Vec::with_capacity(segment_len)).collect();
        recycle_tx
            .send(batch)
            .map_err(|_| AdaEdgeError::WorkerFailed {
                stage: "recycle pool seeding",
            })?;
    }
    Ok(())
}

/// Refill a recycled batch with up to `remaining` fresh segments.
/// Truncation below `k` only happens on the final partial batch, so the
/// steady state never sheds buffers.
fn fill_batch(source: &mut dyn SegmentSource, batch: &mut SegmentBatch, remaining: usize) {
    batch.truncate(batch.len().min(remaining));
    for seg in batch.iter_mut() {
        source.next_segment_into(seg);
    }
}

/// Aggregate pipeline results.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Segments compressed.
    pub segments: u64,
    /// Data points processed.
    pub points: u64,
    /// Raw bytes in.
    pub bytes_in: u64,
    /// Compressed bytes out.
    pub bytes_out: u64,
    /// Wall-clock runtime.
    pub elapsed_seconds: f64,
    /// Achieved throughput in points per second.
    pub points_per_sec: f64,
    /// Times the ingestion stage found the buffer full.
    pub spills: u64,
    /// How often each codec was selected.
    pub codec_counts: HashMap<CodecId, u64>,
    /// Contained codec failures (errors or panics caught inside workers).
    /// Each failed segment was degraded to Raw rather than lost.
    pub codec_failures: u64,
    /// Arms the selector quarantined after repeated consecutive failures.
    pub quarantined: Vec<CodecId>,
}

/// Run `n_segments` from `source` through the pipeline and report
/// aggregate throughput.
///
/// Codec errors and panics are contained per segment (the segment is
/// stored Raw and the arm penalized); `Err(AdaEdgeError::WorkerFailed)`
/// is returned only if a worker thread dies outside that contained
/// region, or the recycle pool cannot be seeded.
pub fn run_pipeline(
    source: &mut dyn SegmentSource,
    n_segments: usize,
    config: &EngineConfig,
) -> Result<EngineReport> {
    let mut reg = CodecRegistry::new(config.precision);
    if let Some(id) = config.fault_injection {
        reg.inject_compress_panic(id);
    }
    let reg = reg;
    let selector = Mutex::new(LosslessSelector::new(
        config.lossless_arms.clone(),
        config.selector,
    ));
    let n_threads = config.n_compression_threads.max(1);
    let buffer_cap = config.buffer_segments.max(1);
    let k = config.batch_segments.max(1);
    // The channel is bounded in *batches*; `buffer_segments` keeps its
    // meaning (segments of in-flight buffer) by dividing through K.
    let batch_cap = buffer_cap.div_ceil(k);
    let (tx, rx) = channel::bounded::<SegmentBatch>(batch_cap);
    // Segment-buffer recycling loop: workers return drained batches to the
    // ingestion stage instead of dropping them, so steady-state ingest
    // reuses a fixed pool and performs zero heap allocations per segment.
    // Pool sizing: one batch per queue slot, one per in-flight worker, one
    // in the producer's hand — by pigeonhole at least one batch is always
    // in (or headed to) the recycle channel, so the producer never
    // deadlocks on `recv`.
    let pool = batch_cap + n_threads + 1;
    let (recycle_tx, recycle_rx) = channel::bounded::<SegmentBatch>(pool);
    seed_recycle_pool(&recycle_tx, pool, k, source.segment_len())?;
    let bytes_out = AtomicU64::new(0);
    let spills = AtomicU64::new(0);
    let codec_failures = AtomicU64::new(0);
    let segment_points = source.segment_len() as u64;

    let start = Instant::now();
    let mut codec_counts: HashMap<CodecId, u64> = HashMap::new();
    std::thread::scope(|scope| -> Result<()> {
        let mut workers = Vec::new();
        for _ in 0..n_threads {
            let rx = rx.clone();
            let recycle_tx = recycle_tx.clone();
            let reg = &reg;
            let selector = &selector;
            let bytes_out = &bytes_out;
            let codec_failures = &codec_failures;
            workers.push(scope.spawn(move || {
                let mut scratch = CodecScratch::new();
                let mut local_counts: HashMap<CodecId, u64> = HashMap::new();
                let mut outcomes: Vec<ArmOutcome> = Vec::with_capacity(k);
                while let Ok(batch) = rx.recv() {
                    // Select under the lock once per batch, compress the
                    // whole batch outside it with the arm held sticky, then
                    // report the accumulated outcomes under one lock.
                    let (arm, codec) = selector.lock().select_arm();
                    outcomes.clear();
                    for data in &batch {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            reg.compress_into(codec, data, &mut scratch)
                                .map(|b| (b.ratio(), b.compressed_bytes()))
                        }));
                        match outcome {
                            Ok(Ok((ratio, bytes))) => {
                                bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
                                outcomes.push(ArmOutcome::Ratio(ratio));
                                *local_counts.entry(codec).or_insert(0) += 1;
                            }
                            // Codec error or caught panic: contain it,
                            // penalize the arm, and degrade this segment to
                            // Raw so no data is lost. (A panicked compress
                            // may have left the arena mid-write; Raw
                            // rebuilds its output from scratch, so the
                            // fallback is unaffected.)
                            _ => {
                                codec_failures.fetch_add(1, Ordering::Relaxed);
                                outcomes.push(ArmOutcome::Failure);
                                if let Ok(block) =
                                    reg.compress_into(CodecId::Raw, data, &mut scratch)
                                {
                                    bytes_out.fetch_add(
                                        block.compressed_bytes() as u64,
                                        Ordering::Relaxed,
                                    );
                                    *local_counts.entry(CodecId::Raw).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                    selector.lock().report_batch(arm, &outcomes);
                    // Hand the drained batch back to the ingestion stage
                    // (fails harmlessly once ingestion is done).
                    let _ = recycle_tx.send(batch);
                }
                local_counts
            }));
        }
        drop(rx);
        drop(recycle_tx);

        // Ingestion stage (this thread): refill a recycled batch. A failed
        // `try_send` is the spill signal — it observes fullness and enqueues
        // in one channel operation; every segment in the delayed batch
        // counts as spilled.
        let mut remaining = n_segments;
        while remaining > 0 {
            let Ok(mut batch) = recycle_rx.recv() else {
                break;
            };
            fill_batch(source, &mut batch, remaining);
            remaining -= batch.len();
            match tx.try_send(batch) {
                Ok(()) => {}
                Err(channel::TrySendError::Full(batch)) => {
                    spills.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    if tx.send(batch).is_err() {
                        break;
                    }
                }
                Err(channel::TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx);
        drop(recycle_rx);

        // Join every worker before deciding the outcome so a single dead
        // thread cannot leave the scope with unjoined panics.
        let mut lost_worker = false;
        for w in workers {
            match w.join() {
                Ok(local) => {
                    for (codec, count) in local {
                        *codec_counts.entry(codec).or_insert(0) += count;
                    }
                }
                Err(_) => lost_worker = true,
            }
        }
        if lost_worker {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "compression worker",
            });
        }
        Ok(())
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let points = n_segments as u64 * segment_points;
    let selector = selector.into_inner();
    Ok(EngineReport {
        segments: n_segments as u64,
        points,
        bytes_in: points * 8,
        bytes_out: bytes_out.load(Ordering::Relaxed),
        elapsed_seconds: elapsed,
        points_per_sec: points as f64 / elapsed.max(1e-9),
        spills: spills.load(Ordering::Relaxed),
        codec_counts,
        codec_failures: codec_failures.load(Ordering::Relaxed),
        quarantined: selector.quarantined_arms(),
    })
}

/// Offline-mode engine configuration: the paper's 4-thread layout
/// (ingestion, compression, recoding, evaluation; reward evaluation runs
/// inside the recoding step here).
#[derive(Debug, Clone)]
pub struct OfflineEngineConfig {
    /// Compression worker threads.
    pub n_compression_threads: usize,
    /// Uncompressed-buffer capacity in segments.
    pub buffer_segments: usize,
    /// Hard storage budget in bytes.
    pub storage_budget_bytes: usize,
    /// Recoding trigger fraction (paper: 0.8).
    pub recode_threshold: f64,
    /// Lossless candidate arms.
    pub lossless_arms: Vec<CodecId>,
    /// Lossy candidate arms.
    pub lossy_arms: Vec<CodecId>,
    /// MAB hyper-parameters.
    pub selector: SelectorConfig,
    /// Workload target for the recoding MABs.
    pub target: crate::targets::OptimizationTarget,
    /// Dataset decimal precision.
    pub precision: u8,
    /// Segments per scheduling batch (K), as in
    /// [`EngineConfig::batch_segments`]. Also bounds how many recode
    /// victims the recoding thread drains per selector-lock acquisition.
    pub batch_segments: usize,
}

impl OfflineEngineConfig {
    /// Defaults for a given budget and target.
    pub fn new(storage_budget_bytes: usize, target: crate::targets::OptimizationTarget) -> Self {
        Self {
            n_compression_threads: 1,
            buffer_segments: 64,
            storage_budget_bytes,
            recode_threshold: 0.8,
            lossless_arms: CodecRegistry::lossless_candidates(),
            lossy_arms: CodecRegistry::lossy_candidates(),
            selector: SelectorConfig::offline(),
            target,
            precision: 4,
            batch_segments: 1,
        }
    }
}

/// Results of an offline engine run.
#[derive(Debug, Clone)]
pub struct OfflineEngineReport {
    /// Segments stored.
    pub segments: u64,
    /// Data points ingested.
    pub points: u64,
    /// Final stored bytes.
    pub stored_bytes: usize,
    /// Final utilization of the budget.
    pub utilization: f64,
    /// Total recoding passes performed by the recoding thread.
    pub recodes: u64,
    /// Segments dropped because the budget could not be met in time.
    pub drops: u64,
    /// Wall-clock runtime.
    pub elapsed_seconds: f64,
    /// Achieved throughput in points/s.
    pub points_per_sec: f64,
    /// Contained codec failures (errors or panics caught inside workers).
    pub codec_failures: u64,
    /// Lossless arms quarantined after repeated consecutive failures.
    pub quarantined: Vec<CodecId>,
}

/// Run the multithreaded offline pipeline: ingestion (caller thread) →
/// bounded buffer → compression workers → shared budgeted store, with a
/// dedicated recoding thread draining space via the banded lossy MAB.
///
/// Codec failures are contained per segment exactly as in
/// [`run_pipeline`]; `Err(AdaEdgeError::WorkerFailed)` means a worker or
/// the recoding thread died outside the contained region.
pub fn run_offline_pipeline(
    source: &mut dyn SegmentSource,
    n_segments: usize,
    config: &OfflineEngineConfig,
) -> Result<OfflineEngineReport> {
    use crate::selector::BandedLossySelector;
    use crate::targets::RewardEvaluator;
    use adaedge_storage::SegmentStore;

    let reg = CodecRegistry::new(config.precision);
    let store = Mutex::new(SegmentStore::with_budget(config.storage_budget_bytes));
    let lossless = Mutex::new(LosslessSelector::new(
        config.lossless_arms.clone(),
        config.selector,
    ));
    let evaluator = RewardEvaluator::new(config.target.clone(), None, 0);
    let lossy = Mutex::new(BandedLossySelector::new(
        config.lossy_arms.clone(),
        config.selector,
        evaluator,
    ));
    let n_threads = config.n_compression_threads.max(1);
    let buffer_cap = config.buffer_segments.max(1);
    let workers_done = std::sync::atomic::AtomicBool::new(false);
    // Signals any change to the store's occupancy: workers wake the recoder
    // after a put, the recoder wakes blocked workers after freeing space, and
    // the ingestion thread wakes everyone at shutdown. Waits pair with the
    // store mutex; short timeouts guard the flag-set/notify window.
    let store_cv = Condvar::new();
    let recodes = AtomicU64::new(0);
    let drops = AtomicU64::new(0);
    let k = config.batch_segments.max(1);
    let batch_cap = buffer_cap.div_ceil(k);
    let (tx, rx) = channel::bounded::<SegmentBatch>(batch_cap);
    // Same batched segment-buffer recycling loop as `run_pipeline`.
    let pool = batch_cap + n_threads + 1;
    let (recycle_tx, recycle_rx) = channel::bounded::<SegmentBatch>(pool);
    seed_recycle_pool(&recycle_tx, pool, k, source.segment_len())?;
    let codec_failures = AtomicU64::new(0);
    let segment_points = source.segment_len() as u64;
    let threshold = config.recode_threshold;
    let budget = config.storage_budget_bytes;

    let start = Instant::now();
    std::thread::scope(|scope| -> Result<()> {
        // Recoding thread: frees space whenever occupancy crosses θ·budget.
        // Victims are drained in batches of up to K per pass: one store
        // lock to snapshot them, one selector lock across all their
        // recodes, one store lock to commit the winners.
        let recoder = {
            let store = &store;
            let lossy = &lossy;
            let reg = &reg;
            let workers_done = &workers_done;
            let recodes = &recodes;
            let store_cv = &store_cv;
            scope.spawn(move || loop {
                // Sleep until occupancy crosses θ·budget or the pipeline
                // drains; puts notify the condvar, so no busy-wait.
                {
                    let mut guard = store.lock();
                    while !guard.over_threshold(threshold) {
                        if workers_done.load(Ordering::Acquire) {
                            return;
                        }
                        store_cv.wait_for(&mut guard, Duration::from_millis(50));
                    }
                }
                // Snapshot up to K victims under one lock; recode outside.
                let victims = {
                    let guard = store.lock();
                    let raw_bytes: usize = guard.iter().map(|s| s.n_points() * 8).sum();
                    let r_req = if raw_bytes == 0 {
                        0.0
                    } else {
                        (threshold * budget as f64 / raw_bytes as f64).min(1.0)
                    };
                    let mut picks = Vec::new();
                    let mut fallback = None;
                    for id in guard.victim_order() {
                        if picks.len() >= k {
                            break;
                        }
                        if let Some(seg) = guard.peek(id) {
                            if let Some(block) = seg.block() {
                                if seg.ratio() > r_req {
                                    picks.push((id, block.clone(), seg.ratio() * 0.5));
                                } else if fallback.is_none() {
                                    fallback = Some((id, block.clone(), seg.ratio() * 0.5));
                                }
                            }
                        }
                    }
                    if picks.is_empty() {
                        // No victim clears the required ratio: recode the
                        // best-effort fallback alone, as the per-segment
                        // scheduler did.
                        picks.extend(fallback);
                    }
                    picks
                };
                if victims.is_empty() {
                    // Nothing recodable yet; wait for the store to change.
                    let mut guard = store.lock();
                    store_cv.wait_for(&mut guard, Duration::from_millis(5));
                    continue;
                }
                // One selector-lock acquisition for the whole victim batch
                // (each recode self-reports its rewards via report_batch).
                let results: Vec<_> = {
                    let mut sel = lossy.lock();
                    victims
                        .iter()
                        .map(|(_, block, target_ratio)| sel.recode(reg, block, None, *target_ratio))
                        .collect()
                };
                let mut committed = false;
                {
                    let mut guard = store.lock();
                    for ((id, block, _), result) in victims.iter().zip(results) {
                        let old_bytes = block.compressed_bytes();
                        let Ok(sel) = result else { continue };
                        if sel.block.compressed_bytes() >= old_bytes {
                            continue;
                        }
                        // The segment may have been touched meanwhile; only
                        // commit if it still holds the block we recoded.
                        let unchanged = guard
                            .peek(*id)
                            .and_then(|s| s.block())
                            .map(|b| b.compressed_bytes() == old_bytes)
                            .unwrap_or(false);
                        if unchanged && guard.replace(*id, sel.block).is_ok() {
                            recodes.fetch_add(1, Ordering::Relaxed);
                            committed = true;
                        }
                    }
                }
                if committed {
                    // Space was freed; wake any worker blocked on put.
                    store_cv.notify_all();
                } else {
                    // No victim made progress this pass; back off briefly
                    // instead of spinning.
                    let mut guard = store.lock();
                    store_cv.wait_for(&mut guard, Duration::from_millis(1));
                }
            })
        };

        // Compression workers.
        let mut workers = Vec::new();
        for _ in 0..n_threads {
            let rx = rx.clone();
            let recycle_tx = recycle_tx.clone();
            let reg = &reg;
            let lossless = &lossless;
            let store = &store;
            let store_cv = &store_cv;
            let drops = &drops;
            let codec_failures = &codec_failures;
            workers.push(scope.spawn(move || {
                let mut scratch = CodecScratch::new();
                let mut outcomes: Vec<ArmOutcome> = Vec::with_capacity(k);
                let mut blocks = Vec::with_capacity(k);
                while let Ok(batch) = rx.recv() {
                    // One selection per batch (arm held sticky), one
                    // report_batch, then the store puts.
                    let (arm, codec) = lossless.lock().select_arm();
                    outcomes.clear();
                    blocks.clear();
                    for data in &batch {
                        // The store takes ownership, so the scratch-backed
                        // block is materialized once inside the contained
                        // region.
                        let compressed = catch_unwind(AssertUnwindSafe(|| {
                            reg.compress_into(codec, data, &mut scratch)
                                .map(|b| (b.ratio(), b.to_block()))
                        }));
                        match compressed {
                            Ok(Ok((ratio, block))) => {
                                outcomes.push(ArmOutcome::Ratio(ratio));
                                blocks.push(block);
                            }
                            // Codec error or caught panic: penalize the arm
                            // and degrade the segment to Raw instead of
                            // losing it.
                            _ => {
                                codec_failures.fetch_add(1, Ordering::Relaxed);
                                outcomes.push(ArmOutcome::Failure);
                                match reg.compress_into(CodecId::Raw, data, &mut scratch) {
                                    Ok(b) => blocks.push(b.to_block()),
                                    Err(_) => {
                                        drops.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    }
                    lossless.lock().report_batch(arm, &outcomes);
                    let _ = recycle_tx.send(batch);
                    for block in blocks.drain(..) {
                        // Wait (bounded) for the recoder to clear space,
                        // sleeping on the condvar between attempts instead
                        // of spinning.
                        let mut stored = false;
                        let deadline = Instant::now() + Duration::from_secs(2);
                        {
                            let mut guard = store.lock();
                            loop {
                                if guard.put_compressed(block.clone()).is_ok() {
                                    stored = true;
                                    break;
                                }
                                if Instant::now() >= deadline {
                                    break;
                                }
                                store_cv.wait_for(&mut guard, Duration::from_millis(10));
                            }
                        }
                        if stored {
                            // The store grew; the recoder may now be over θ.
                            store_cv.notify_all();
                        } else {
                            drops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        drop(rx);
        drop(recycle_tx);

        let mut remaining = n_segments;
        while remaining > 0 {
            let Ok(mut batch) = recycle_rx.recv() else {
                break;
            };
            fill_batch(source, &mut batch, remaining);
            remaining -= batch.len();
            if tx.send(batch).is_err() {
                break;
            }
        }
        drop(tx);
        drop(recycle_rx);
        // Join everything before deciding the outcome so the scope never
        // exits with an unjoined panicked thread.
        let mut lost_worker = false;
        for w in workers {
            if w.join().is_err() {
                lost_worker = true;
            }
        }
        workers_done.store(true, Ordering::Release);
        store_cv.notify_all();
        let lost_recoder = recoder.join().is_err();
        if lost_worker {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "compression worker",
            });
        }
        if lost_recoder {
            return Err(AdaEdgeError::WorkerFailed {
                stage: "recoding thread",
            });
        }
        Ok(())
    })?;

    let elapsed = start.elapsed().as_secs_f64();
    let lossless = lossless.into_inner();
    let guard = store.lock();
    let points = n_segments as u64 * segment_points;
    Ok(OfflineEngineReport {
        segments: guard.len() as u64,
        points,
        stored_bytes: guard.used_bytes(),
        utilization: guard.utilization(),
        recodes: recodes.load(Ordering::Relaxed),
        drops: drops.load(Ordering::Relaxed),
        elapsed_seconds: elapsed,
        points_per_sec: points as f64 / elapsed.max(1e-9),
        codec_failures: codec_failures.load(Ordering::Relaxed),
        quarantined: lossless.quarantined_arms(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaedge_datasets::SineStream;

    fn run(threads: usize, segments: usize) -> EngineReport {
        let mut source = SineStream::new(1000, 0.1, 4, 7);
        let config = EngineConfig {
            n_compression_threads: threads,
            ..Default::default()
        };
        run_pipeline(&mut source, segments, &config).expect("pipeline")
    }

    #[test]
    fn processes_all_segments() {
        let report = run(2, 50);
        assert_eq!(report.segments, 50);
        assert_eq!(report.points, 50_000);
        assert_eq!(report.bytes_in, 400_000);
        assert!(report.bytes_out > 0);
        assert!(report.bytes_out < report.bytes_in);
        let total: u64 = report.codec_counts.values().sum();
        assert_eq!(total, 50);
        assert_eq!(report.codec_failures, 0);
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn injected_codec_panic_is_contained() {
        let mut source = SineStream::new(1000, 0.1, 4, 7);
        let config = EngineConfig {
            n_compression_threads: 2,
            lossless_arms: vec![CodecId::Gzip, CodecId::Snappy],
            fault_injection: Some(CodecId::Gzip),
            ..Default::default()
        };
        let report = run_pipeline(&mut source, 60, &config).expect("faulty arm must be contained");
        // Every segment still lands somewhere: the healthy arm or Raw.
        let total: u64 = report.codec_counts.values().sum();
        assert_eq!(total, 60);
        assert_eq!(report.codec_counts.get(&CodecId::Gzip), None);
        // The failures were observed, routed to Raw, and the arm ended up
        // quarantined (optimistic init keeps re-picking it until then).
        assert!(report.codec_failures >= 3, "{}", report.codec_failures);
        assert_eq!(
            report.codec_counts.get(&CodecId::Raw).copied().unwrap_or(0),
            report.codec_failures
        );
        assert_eq!(report.quarantined, vec![CodecId::Gzip]);
    }

    #[test]
    fn throughput_is_positive_and_reported() {
        let report = run(1, 20);
        assert!(report.points_per_sec > 0.0);
        assert!(report.elapsed_seconds > 0.0);
    }

    #[test]
    fn offline_engine_bounds_space_under_pressure() {
        use crate::query::AggKind;
        use crate::targets::OptimizationTarget;
        let mut source = SineStream::new(1000, 0.3, 4, 3);
        let config = OfflineEngineConfig {
            storage_budget_bytes: 60_000,
            ..OfflineEngineConfig::new(60_000, OptimizationTarget::agg(AggKind::Sum))
        };
        let report = run_offline_pipeline(&mut source, 100, &config).expect("pipeline");
        assert_eq!(report.segments + report.drops, 100);
        assert!(report.drops <= 2, "drops {}", report.drops);
        assert!(report.utilization <= 1.0 + 1e-9);
        assert!(report.recodes > 0, "recoder never ran");
        assert!(report.stored_bytes <= 60_000);
    }

    #[test]
    fn offline_engine_without_pressure_keeps_everything_lossless() {
        use crate::query::AggKind;
        use crate::targets::OptimizationTarget;
        let mut source = SineStream::new(500, 0.1, 4, 5);
        let config = OfflineEngineConfig::new(10 << 20, OptimizationTarget::agg(AggKind::Sum));
        let report = run_offline_pipeline(&mut source, 30, &config).expect("pipeline");
        assert_eq!(report.segments, 30);
        assert_eq!(report.drops, 0);
        assert_eq!(report.recodes, 0);
        assert_eq!(report.codec_failures, 0);
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn multiple_threads_do_not_lose_segments() {
        for threads in [1, 2, 4, 8] {
            let report = run(threads, 40);
            let total: u64 = report.codec_counts.values().sum();
            assert_eq!(total, 40, "{threads} threads");
        }
    }
}
