//! Figure 6: random-forest relative accuracy vs achieved compression ratio
//! for (a) BUFF-lossy and (b) PAA, on the UCR-like dataset.
//!
//! At aggressive ratios (≈0.12) BUFF-lossy's bit truncation underperforms
//! the shape-preserving representations, and below ≈0.11 it cannot
//! compress at all — the crossover the adaptive selector exploits.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig06_rforest_accuracy`

use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_datasets::{ucr_like, SyntheticConfig};
use adaedge_ml::{metrics, Dataset, ForestConfig, Model};

fn main() {
    // UCR-like data at 5-digit precision (paper's per-dataset setting).
    let data = ucr_like(SyntheticConfig {
        per_class: 40,
        precision: 5,
        seed: 21,
        ..Default::default()
    });
    let dataset = Dataset::new(data.rows.clone(), data.labels.clone());
    let model = Model::train_rforest(
        &dataset,
        ForestConfig {
            n_trees: 15,
            ..Default::default()
        },
    );
    let reg = CodecRegistry::new(5);

    println!("Figure 6: random-forest accuracy vs achieved compression ratio (UCR-like)\n");
    for codec in [CodecId::BuffLossy, CodecId::Paa] {
        let lossy = reg.get_lossy(codec).unwrap();
        println!(
            "({}) {}",
            if codec == CodecId::BuffLossy {
                "a"
            } else {
                "b"
            },
            codec.name()
        );
        println!(
            "{:>14} {:>14} {:>10}",
            "target ratio", "achieved", "accuracy"
        );
        for &target in &[
            1.0, 0.5, 0.39, 0.34, 0.28, 0.23, 0.19, 0.13, 0.11, 0.06, 0.03,
        ] {
            let mut achieved = Vec::new();
            let mut lossy_rows = Vec::new();
            let mut orig_rows = Vec::new();
            let mut unreachable = false;
            for row in &data.rows {
                match lossy.compress_to_ratio(row, target) {
                    Ok(block) => {
                        achieved.push(block.ratio());
                        lossy_rows.push(reg.decompress(&block).unwrap());
                        orig_rows.push(row.clone());
                    }
                    Err(_) => {
                        unreachable = true;
                        break;
                    }
                }
            }
            if unreachable {
                println!("{target:>14.3} {:>14} {:>10}", "—", "unreachable");
                continue;
            }
            let acc = metrics::ml_accuracy(&model, &orig_rows, &lossy_rows);
            let mean_achieved = achieved.iter().sum::<f64>() / achieved.len() as f64;
            println!("{target:>14.3} {mean_achieved:>14.3} {acc:>10.4}");
        }
        println!();
    }
    println!(
        "expected shape (paper Fig 6): BUFF strong at moderate ratios, \
         unreachable below ≈0.11; PAA usable across the full range but \
         weaker at matched moderate ratios."
    );
}
