//! Figure 15: robustness against data shift on edge-class constraints.
//!
//! A 100 k points/s stream is half high-entropy CBF data, half low-entropy
//! repetitive data; the optimization goal is minimum space. The decision
//! space is doubled (the full zlib ladder, dictionary, Chimp, ...). The
//! MAB should converge to Sprintz/BUFF on the first half and to a byte
//! compressor (gzip/zlib) after the shift, for every ε in {0.05, 0.1,
//! 0.2}; a larger non-stationary step switches faster.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig15_data_shift`

use adaedge_bandit::StepSize;
use adaedge_bench::harness::mean;
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::{LosslessSelector, SelectorConfig};
use adaedge_datasets::{CbfConfig, SegmentSource, ShiftStream};

const SEGMENT: usize = 2048;
const TOTAL: usize = 400;
const SHIFT_AT: usize = 200;

fn run(epsilon: f64, step: StepSize) -> (Vec<(usize, String, f64)>, f64, f64, usize) {
    let reg = CodecRegistry::new(4);
    let mut selector = LosslessSelector::new(
        CodecRegistry::extended_lossless_candidates(),
        SelectorConfig {
            epsilon,
            step,
            seed: 5,
            ..Default::default()
        },
    );
    let mut stream = ShiftStream::new(CbfConfig::default(), SEGMENT, SHIFT_AT, 4);
    let mut history = Vec::new();
    let mut first_half = Vec::new();
    let mut second_half = Vec::new();
    let mut switch_lag = None;
    for i in 0..TOTAL {
        let seg = stream.next_segment();
        let sel = selector.compress(&reg, &seg).expect("compresses");
        if i < SHIFT_AT {
            first_half.push(sel.block.ratio());
        } else {
            second_half.push(sel.block.ratio());
            // When does the greedy arm become a byte/dict compressor?
            if switch_lag.is_none() {
                let arm = selector.greedy_arm();
                if matches!(
                    arm,
                    CodecId::Gzip
                        | CodecId::Zlib1
                        | CodecId::Zlib6
                        | CodecId::Zlib9
                        | CodecId::Dict
                        | CodecId::Snappy
                ) {
                    switch_lag = Some(i - SHIFT_AT);
                }
            }
        }
        if i % 40 == 0 || i == SHIFT_AT || i == SHIFT_AT + 5 {
            history.push((
                i,
                selector.greedy_arm().name().to_string(),
                sel.block.ratio(),
            ));
        }
    }
    (
        history,
        mean(&first_half),
        mean(&second_half),
        switch_lag.unwrap_or(TOTAL),
    )
}

fn main() {
    println!(
        "Figure 15: data-shift robustness (shift at segment {SHIFT_AT}, doubled \
         candidate set, target = minimum space)\n"
    );

    // (a) baseline candidates: fixed-codec ratios per phase for reference.
    println!("(a) fixed candidates: mean ratio before / after the shift");
    let reg = CodecRegistry::new(4);
    let mut stream = ShiftStream::new(CbfConfig::default(), SEGMENT, SHIFT_AT, 4);
    let segs: Vec<Vec<f64>> = (0..TOTAL).map(|_| stream.next_segment()).collect();
    println!("{:>10} {:>12} {:>12}", "codec", "pre-shift", "post-shift");
    for id in CodecRegistry::extended_lossless_candidates() {
        let pre: Vec<f64> = segs[..SHIFT_AT]
            .iter()
            .step_by(20)
            .map(|s| {
                reg.get(id)
                    .compress(s)
                    .map(|b| b.ratio())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let post: Vec<f64> = segs[SHIFT_AT..]
            .iter()
            .step_by(20)
            .map(|s| {
                reg.get(id)
                    .compress(s)
                    .map(|b| b.ratio())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        println!(
            "{:>10} {:>12.4} {:>12.4}",
            id.name(),
            mean(&pre),
            mean(&post)
        );
    }

    // (b) MAB with epsilon in {0.05, 0.1, 0.2}, at the paper's data-shift
    // default of constant step 0.5 (the sample-average alternative appears
    // in the ablation below and gets stuck on pre-shift estimates).
    println!("\n(b) MAB convergence per epsilon (constant step 0.5)");
    for eps in [0.05, 0.1, 0.2] {
        let (history, pre, post, lag) = run(eps, StepSize::Constant(0.5));
        println!("\n  epsilon = {eps}: mean ratio pre {pre:.4} / post {post:.4}; switched {lag} segments after the shift");
        for (i, arm, ratio) in history {
            println!("    seg {i:>4}: greedy={arm:<10} ratio={ratio:.4}");
        }
    }

    // Non-stationary step ablation: larger step switches faster.
    println!("\n(c) non-stationary step ablation (epsilon = 0.1)");
    println!("{:>22} {:>12} {:>14}", "step", "post ratio", "switch lag");
    for (label, step) in [
        ("sample-average", StepSize::SampleAverage),
        ("constant 0.1", StepSize::Constant(0.1)),
        ("constant 0.5", StepSize::Constant(0.5)),
        ("constant 0.9", StepSize::Constant(0.9)),
    ] {
        let (_, _, post, lag) = run(0.1, step);
        println!("{label:>22} {post:>12.4} {lag:>14}");
    }

    println!(
        "\nexpected shape (paper): every epsilon converges — Sprintz/BUFF \
         pre-shift, gzip/zlib-class post-shift; a larger non-stationary step \
         value switches more swiftly after the distribution change."
    );
}
