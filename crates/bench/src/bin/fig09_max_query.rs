//! Figure 9: MAX-query accuracy loss over the target compression ratio
//! (log-scale in the paper).
//!
//! PLA\'s knots sit at extremum deviations, so maxima survive; the MAB
//! should consistently choose PLA, as the paper reports.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig09_max_query`

use adaedge_bench::agg_figure::run_agg_figure;
use adaedge_core::AggKind;

fn main() {
    println!("Figure 9: MAX-query accuracy loss vs target compression ratio");
    println!("(paper plots log-scale; lossless arms sit below 1e-18 = printed 0)");
    run_agg_figure(AggKind::Max, "Fig 9 MAX accuracy loss");
    println!(
        "\nexpected shape (paper): PLA dominates (the MAB picks it); \
         PAA/FFT smooth the peaks away; RRD worst."
    );
}
