//! Figure 10: complex optimization target — w1·Acc_sum + w2·Acc_RF with
//! w1 = 0.625, w2 = 0.375 — over the target compression ratio (higher is
//! better).
//!
//! The paper finds two crossovers among the lossy arms (FFT best at mild
//! ratios, BUFF-lossy in the middle, FFT again at aggressive ratios) and
//! shows the MAB adapting across most of the range.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig10_complex_agg_ml`

use adaedge_bench::harness::mean;
use adaedge_bench::{
    frozen_model, print_table, ratio_sweep, MethodSeries, ModelKind, INSTANCE_LEN, SEGMENT_LEN,
};
use adaedge_codecs::CodecRegistry;
use adaedge_core::baselines::TvStoreBaseline;
use adaedge_core::{
    AggKind, Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget, RewardEvaluator,
    TargetComponent,
};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};

const SEGMENTS: usize = 100;
const WARMUP: usize = 40;
const W1: f64 = 0.625;
const W2: f64 = 0.375;

fn main() {
    let sweep = ratio_sweep();
    let reg = CodecRegistry::new(4);
    let model = frozen_model(ModelKind::RForest, 17);
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    let segments: Vec<Vec<f64>> = (0..SEGMENTS).map(|_| stream.next_segment()).collect();
    let eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model.clone()), INSTANCE_LEN);
    let value = |orig: &[f64], rec: &[f64]| {
        W1 * eval.agg_accuracy(AggKind::Sum, orig, rec) + W2 * eval.ml_accuracy(orig, rec)
    };

    println!(
        "Figure 10: complex target w1*Acc_sum + w2*Acc_rforest (w1={W1}, w2={W2});\nhigher is better\n"
    );

    let mut series = Vec::new();

    // MAB: the full online pipeline optimizing the same complex target.
    let target = OptimizationTarget::complex(vec![
        (W1, TargetComponent::AggAccuracy(AggKind::Sum)),
        (W2, TargetComponent::MlAccuracy),
    ]);
    let mut mab = MethodSeries::new("mab");
    for &ratio in &sweep {
        let constraints = Constraints::online(100_000.0, ratio * 64.0 * 100_000.0, SEGMENT_LEN);
        let mut config = OnlineConfig::new(constraints, target.clone());
        config.model = Some(model.clone());
        config.instance_len = INSTANCE_LEN;
        let mut edge = OnlineAdaEdge::new(config).expect("valid config");
        let mut vals = Vec::new();
        let mut failed = false;
        for seg in &segments {
            match edge.process_segment(seg) {
                Ok(out) => {
                    let rec = edge.registry().decompress(&out.selection.block).unwrap();
                    vals.push(value(seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        mab.push((!failed).then(|| mean(&vals[WARMUP.min(vals.len())..])));
    }
    series.push(mab);

    // Fixed lossy arms.
    for codec in CodecRegistry::lossy_candidates() {
        let lossy = reg.get_lossy(codec).unwrap();
        let mut s = MethodSeries::new(codec.name());
        for &ratio in &sweep {
            let mut vals = Vec::new();
            let mut failed = false;
            for seg in &segments {
                match lossy.compress_to_ratio(seg, ratio) {
                    Ok(block) => {
                        let rec = reg.decompress(&block).unwrap();
                        vals.push(value(seg, &rec));
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            s.push((!failed).then(|| mean(&vals)));
        }
        series.push(s);
    }

    // TVStore (PLA).
    let tv = TvStoreBaseline::new();
    let mut s = MethodSeries::new("tvstore-pla");
    for &ratio in &sweep {
        let mut vals = Vec::new();
        let mut failed = false;
        for seg in &segments {
            match tv.compress(&reg, seg, ratio) {
                Ok(sel) => {
                    let rec = reg.decompress(&sel.block).unwrap();
                    vals.push(value(seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        s.push((!failed).then(|| mean(&vals)));
    }
    series.push(s);

    print_table("Fig 10 complex target value", "ratio", &sweep, &series, 4);
    println!(
        "\nexpected shape (paper): crossovers among the lossy arms as the \
         ratio tightens (BUFF-lossy strong mid-range until its floor, FFT \
         strongest at the aggressive end); the MAB adapts to the per-ratio \
         winner across most of the range."
    );
}
