//! Figures 12–13: offline mode — KMeans accuracy loss and space usage over
//! ingestion time, for `mab_mab` (AdaEdge) against the fixed
//! `lossless_lossy` pairs and the CodecDB baseline.
//!
//! The paper allocates 10 MB for 80 MB of ingested points (8× overcommit)
//! with a 0.8 recoding threshold; we keep the same overcommit at 1/8 the
//! absolute scale so the run finishes in seconds (shapes are
//! scale-invariant: what matters is budget pressure, not absolute bytes).
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig12_offline_kmeans`

use adaedge_bench::{frozen_model, ModelKind, INSTANCE_LEN, SEGMENT_LEN};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::baselines::{FixedPair, FixedPairOffline};
use adaedge_core::{OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge_ml::{metrics, Model};

/// ≈6× overcommit at reduced absolute scale (floor-limited, like the paper).
const BUDGET: usize = 1_400_000; // 1.4 MB
const TOTAL_SEGMENTS: usize = 1000; // ≈8.2 MB of raw doubles
const CHECKPOINTS: usize = 10;

fn accuracy(model: &Model, pairs: &[(Vec<f64>, Vec<f64>)]) -> f64 {
    let mut orig_rows = Vec::new();
    let mut lossy_rows = Vec::new();
    for (orig, rec) in pairs {
        for (o, l) in orig
            .chunks_exact(INSTANCE_LEN)
            .zip(rec.chunks_exact(INSTANCE_LEN))
        {
            orig_rows.push(o.to_vec());
            lossy_rows.push(l.to_vec());
        }
    }
    metrics::ml_accuracy(model, &orig_rows, &lossy_rows)
}

fn stream() -> CbfStream {
    CbfStream::new(CbfConfig::default(), SEGMENT_LEN)
}

fn main() {
    let model = frozen_model(ModelKind::KMeans, 17);
    let checkpoint_every = TOTAL_SEGMENTS / CHECKPOINTS;
    println!(
        "Figures 12-13: offline KMeans accuracy loss over ingestion time\n\
         budget {} KB, ingesting {} KB raw (~6x overcommit), theta=0.8\n",
        BUDGET / 1000,
        TOTAL_SEGMENTS * SEGMENT_LEN * 8 / 1000
    );
    println!(
        "{:<22} {}",
        "method",
        (1..=CHECKPOINTS)
            .map(|c| format!("{:>8}", format!("t{}", c * 10)))
            .collect::<String>()
    );

    // mab_mab: the AdaEdge pipeline.
    {
        let mut config = OfflineConfig::new(BUDGET, OptimizationTarget::ml());
        config.model = Some(model.clone());
        config.instance_len = INSTANCE_LEN;
        let mut edge = OfflineAdaEdge::new(config).expect("valid config");
        let mut src = stream();
        let mut row = String::new();
        let mut failed_at = None;
        for i in 0..TOTAL_SEGMENTS {
            if edge.ingest(&src.next_segment()).is_err() {
                failed_at = Some(i);
                break;
            }
            if (i + 1) % checkpoint_every == 0 {
                let pairs: Vec<(Vec<f64>, Vec<f64>)> = edge
                    .reconstruct_all()
                    .unwrap()
                    .into_iter()
                    .map(|(_, rec, orig)| (orig.expect("kept"), rec))
                    .collect();
                row.push_str(&format!("{:>8.4}", 1.0 - accuracy(&model, &pairs)));
            }
        }
        match failed_at {
            None => println!("{:<22} {}", "mab_mab", row),
            Some(i) => println!("{:<22} {} FAILED@{}", "mab_mab", row, i),
        }
    }

    // Fixed pairs (the figures' top performers plus the weak ones).
    let pairs = vec![
        FixedPair::new(CodecId::Sprintz, CodecId::BuffLossy),
        FixedPair::new(CodecId::Gzip, CodecId::BuffLossy),
        FixedPair::new(CodecId::Snappy, CodecId::BuffLossy),
        FixedPair::new(CodecId::Gorilla, CodecId::BuffLossy),
        FixedPair::new(CodecId::Buff, CodecId::BuffLossy),
        FixedPair::new(CodecId::Sprintz, CodecId::Paa),
        FixedPair::new(CodecId::Sprintz, CodecId::Fft),
        FixedPair::new(CodecId::Sprintz, CodecId::Pla),
        FixedPair::new(CodecId::Sprintz, CodecId::RrdSample),
    ];
    for pair in pairs {
        let mut driver = FixedPairOffline::new(pair, BUDGET, 4);
        let mut src = stream();
        let mut row = String::new();
        let mut failed_at = None;
        for i in 0..TOTAL_SEGMENTS {
            if driver.ingest(&src.next_segment()).is_err() {
                failed_at = Some(i);
                break;
            }
            if (i + 1) % checkpoint_every == 0 {
                let pairs = driver.reconstruct_all().unwrap();
                row.push_str(&format!("{:>8.4}", 1.0 - accuracy(&model, &pairs)));
            }
        }
        match failed_at {
            None => println!("{:<22} {}", driver.name(), row),
            Some(i) => println!("{:<22} {} FAILED@{}", driver.name(), row, i),
        }
    }

    // CodecDB: lossless only — fails at the recoding budget.
    {
        let reg = CodecRegistry::new(4);
        let mut src = stream();
        let mut store = adaedge_storage::SegmentStore::with_budget(BUDGET);
        let mut failed_at = None;
        for i in 0..TOTAL_SEGMENTS {
            let data = src.next_segment();
            // CodecDB would commit to Sprintz on this data (see Fig 7).
            let block = reg.get(CodecId::Sprintz).compress(&data).unwrap();
            if store.put_compressed(block).is_err() {
                failed_at = Some(i);
                break;
            }
        }
        println!(
            "{:<22} lossless only, no recoding path -> FAILED@{}",
            "codecdb(sprintz)",
            failed_at.expect("must exceed budget")
        );
    }

    println!(
        "\nexpected shape (paper): every pair bounds space, but accuracy loss \
         grows once recoding starts; mab_mab grows slowest (it picks \
         BUFF-lossy first, then switches to PAA when BUFF hits its floor); \
         CodecDB fails outright at the budget."
    );
}
