//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. compression-sequencing policy (LRU vs FIFO vs query-count) with a
//!    query-hot working set,
//! 2. ratio-banded MAB set vs a single lossy MAB instance (§IV-C2),
//! 3. optimistic vs zero-initialized ε-greedy convergence for lossless
//!    selection,
//! 4. bandit algorithm family (ε-greedy vs UCB1 vs gradient) on online
//!    lossy selection.
//!
//! (The virtual-vs-full recode timing ablation lives in the Criterion
//! bench `codecs::recode`, and the ε / step-size sweeps in fig15.)
//!
//! Run: `cargo run --release -p adaedge-bench --bin ablations`

use adaedge_bench::{frozen_model, ModelKind, INSTANCE_LEN, SEGMENT_LEN};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::{
    AggKind, BanditAlgorithm, LosslessSelector, LossySelector, OfflineAdaEdge, OfflineConfig,
    OptimizationTarget, PolicyKind, RewardEvaluator, SelectorConfig,
};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge_ml::{metrics, Model};

const BUDGET: usize = 900_000;
const SEGMENTS: usize = 700;

fn run_offline(
    policy: PolicyKind,
    band_edges: Vec<f64>,
    model: &Model,
    budget: usize,
) -> (f64, f64) {
    let mut config = OfflineConfig::new(budget, OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE_LEN;
    config.policy = policy;
    config.band_edges = band_edges;
    let mut edge = OfflineAdaEdge::new(config).expect("valid config");
    let mut src = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    let mut hot_ids = Vec::new();
    for i in 0..SEGMENTS {
        let report = edge.ingest(&src.next_segment()).expect("within budget");
        // The first 20 segments form a query-hot working set.
        if i < 20 {
            hot_ids.push(report.id);
        }
        if i % 3 == 0 {
            for &id in &hot_ids {
                let _ = edge.query_segment(id);
            }
        }
    }
    let mut all_orig = Vec::new();
    let mut all_lossy = Vec::new();
    let mut hot_orig = Vec::new();
    let mut hot_lossy = Vec::new();
    for (id, rec, orig) in edge.reconstruct_all().expect("reconstructable") {
        let orig = orig.expect("kept");
        for (o, l) in orig
            .chunks_exact(INSTANCE_LEN)
            .zip(rec.chunks_exact(INSTANCE_LEN))
        {
            all_orig.push(o.to_vec());
            all_lossy.push(l.to_vec());
            if hot_ids.contains(&id) {
                hot_orig.push(o.to_vec());
                hot_lossy.push(l.to_vec());
            }
        }
    }
    (
        1.0 - metrics::ml_accuracy(model, &all_orig, &all_lossy),
        1.0 - metrics::ml_accuracy(model, &hot_orig, &hot_lossy),
    )
}

fn main() {
    let model = frozen_model(ModelKind::KMeans, 17);

    println!("Ablation 1: compression-sequencing policy (hot set queried throughout)");
    println!(
        "{:>14} {:>14} {:>14}",
        "policy", "overall loss", "hot-set loss"
    );
    for (name, policy) in [
        ("lru", PolicyKind::Lru),
        ("fifo", PolicyKind::Fifo),
        ("query-count", PolicyKind::QueryCount),
    ] {
        let (all, hot) = run_offline(policy, adaedge_bandit::default_band_edges(), &model, BUDGET);
        println!("{name:>14} {all:>14.4} {hot:>14.4}");
    }
    println!(
        "expected: LRU and query-count protect the hot set (hot-set loss ≈ 0); \
         FIFO compresses it like everything else.\n"
    );

    println!("Ablation 2: ratio-banded MAB set vs a single lossy instance");
    // Harder pressure than ablation 1 so recoding spans several ratio
    // regimes (the banded design only matters across regimes).
    println!("{:>14} {:>14}", "bands", "overall loss");
    for (name, edges) in [
        ("banded", adaedge_bandit::default_band_edges()),
        ("single", vec![1.0]),
    ] {
        let (all, _) = run_offline(PolicyKind::Lru, edges, &model, 520_000);
        println!("{name:>14} {all:>14.4}");
    }
    println!(
        "expected (paper's rationale): per-band instances keep reward \
         estimates regime-specific. Finding: with safe exploration enabled \
         the two are within noise of each other on this workload — the \
         probe-and-compare step already prevents a stale cross-regime \
         estimate from committing a bad arm, which is the failure mode \
         banding was designed around.\n"
    );

    println!("Ablation 3: optimistic vs zero-initialized lossless selection");
    let reg = CodecRegistry::new(4);
    let mut src = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    let segments: Vec<Vec<f64>> = (0..80).map(|_| src.next_segment()).collect();
    println!(
        "{:>14} {:>16} {:>18}",
        "init", "greedy arm @80", "mean ratio (all)"
    );
    for (name, init) in [("optimistic", 1.0), ("zero", 0.0)] {
        let mut sel = LosslessSelector::new(
            CodecRegistry::lossless_candidates(),
            SelectorConfig {
                epsilon: 0.0, // isolate the effect of the initial estimates
                optimistic_init: init,
                seed: 2,
                ..Default::default()
            },
        );
        let mut ratios = Vec::new();
        for seg in &segments {
            ratios.push(sel.compress(&reg, seg).expect("compresses").block.ratio());
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "{:>14} {:>16} {:>18.4}",
            name,
            sel.greedy_arm().name(),
            mean
        );
    }
    println!(
        "expected: optimistic init explores every arm and settles on the best \
         (Sprintz/BUFF); zero init with pure greed can lock onto the first arm \
         that returns any reward."
    );
    println!("\nAblation 4: bandit algorithm on online lossy selection (SUM target, R = 0.1)");
    println!(
        "{:>14} {:>18} {:>14}",
        "algorithm", "mean reward", "best arm"
    );
    let mut src = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    let segments: Vec<Vec<f64>> = (0..120).map(|_| src.next_segment()).collect();
    for (name, algorithm) in [
        ("eps-greedy 0.01", BanditAlgorithm::EpsilonGreedy),
        ("ucb c=1.4", BanditAlgorithm::Ucb { c: 1.4 }),
        ("gradient a=0.2", BanditAlgorithm::Gradient { alpha: 0.2 }),
    ] {
        let evaluator = RewardEvaluator::new(OptimizationTarget::agg(AggKind::Sum), None, 0);
        let mut sel = LossySelector::new(
            CodecRegistry::lossy_candidates(),
            SelectorConfig {
                algorithm,
                epsilon: 0.01,
                seed: 4,
                ..Default::default()
            },
            evaluator,
        );
        let mut rewards = Vec::new();
        for seg in &segments {
            rewards.push(
                sel.compress_to_ratio(&reg, seg, 0.1)
                    .expect("feasible")
                    .reward,
            );
        }
        let tail = &rewards[40..];
        let mean_r: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        // Report the best-estimated arm among those actually pulled
        // (unpulled arms keep their optimistic initial estimates).
        let est = sel.estimates().to_vec();
        let pulls = sel.pulls().to_vec();
        let arms = sel.arms().to_vec();
        let best = arms[(0..est.len())
            .filter(|&i| pulls[i] > 0)
            .max_by(|&a, &b| est[a].partial_cmp(&est[b]).unwrap())
            .unwrap()];
        println!("{name:>14} {mean_r:>18.6} {:>14}", best.name());
    }
    println!(
        "expected: all three converge on the SUM-optimal arms (PAA/FFT); \
         UCB's structured exploration and epsilon-greedy's random probes \
         land within noise of each other, matching the paper's view that \
         the basic family suffices (§III-C)."
    );
    // Exercise the remaining registry arm set for coverage completeness.
    let _ = CodecRegistry::extended_lossless_candidates().contains(&CodecId::Chimp);
}
