//! Figure 5: decision-tree relative accuracy vs achieved compression ratio
//! for (a) BUFF-lossy and (b) PAA, on the UCI-like dataset.
//!
//! Tree models are sensitive to lossy compression: values near learned
//! thresholds flip branches. BUFF-lossy (minimal value distortion) keeps
//! accuracy high until its floor; PAA degrades smoothly but much earlier.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig05_dtree_accuracy`

use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_datasets::{uci_like, SyntheticConfig};
use adaedge_ml::{metrics, Dataset, Model, TreeConfig};

fn main() {
    // UCI-like data at 6-digit precision (paper's per-dataset setting).
    let data = uci_like(SyntheticConfig {
        per_class: 40,
        precision: 6,
        seed: 11,
        ..Default::default()
    });
    let dataset = Dataset::new(data.rows.clone(), data.labels.clone());
    let model = Model::train_dtree(&dataset, TreeConfig::default());
    let reg = CodecRegistry::new(6);

    println!("Figure 5: decision-tree accuracy vs achieved compression ratio (UCI-like)\n");
    for codec in [CodecId::BuffLossy, CodecId::Paa] {
        let lossy = reg.get_lossy(codec).unwrap();
        println!(
            "({}) {}",
            if codec == CodecId::BuffLossy {
                "a"
            } else {
                "b"
            },
            codec.name()
        );
        println!(
            "{:>14} {:>14} {:>10}",
            "target ratio", "achieved", "accuracy"
        );
        for &target in &[
            1.0, 0.6, 0.55, 0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.15, 0.11, 0.06, 0.03,
        ] {
            let mut achieved = Vec::new();
            let mut lossy_rows = Vec::new();
            let mut orig_rows = Vec::new();
            let mut unreachable = false;
            for row in &data.rows {
                match lossy.compress_to_ratio(row, target) {
                    Ok(block) => {
                        achieved.push(block.ratio());
                        lossy_rows.push(reg.decompress(&block).unwrap());
                        orig_rows.push(row.clone());
                    }
                    Err(_) => {
                        unreachable = true;
                        break;
                    }
                }
            }
            if unreachable {
                println!("{target:>14.3} {:>14} {:>10}", "—", "unreachable");
                continue;
            }
            let acc = metrics::ml_accuracy(&model, &orig_rows, &lossy_rows);
            let mean_achieved = achieved.iter().sum::<f64>() / achieved.len() as f64;
            println!("{target:>14.3} {mean_achieved:>14.3} {acc:>10.4}");
        }
        println!();
    }
    println!(
        "expected shape (paper Fig 5): BUFF stays near 1.0 down to its floor \
         (~0.13); PAA decays steadily as the window grows."
    );
}
