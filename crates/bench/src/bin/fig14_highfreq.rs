//! Figure 14: offline ingestion of a high-frequency signal (1 M points/s)
//! — slow compression pairs cannot recode fast enough, overflow the
//! buffer/budget and fail mid-run; AdaEdge keeps up.
//!
//! Time is simulated: each segment arrives every `SEGMENT_LEN / rate`
//! seconds and the single compression+recoding thread spends the measured
//! compute seconds per ingest (reward evaluation is excluded — the paper
//! gives it its own thread). A method fails when its processing backlog
//! exceeds the uncompressed-buffer capacity, or when the storage budget is
//! breached outright.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig14_highfreq`

use adaedge_bench::{frozen_model, ModelKind, INSTANCE_LEN, SEGMENT_LEN};
use adaedge_codecs::CodecId;
use adaedge_core::baselines::{FixedPair, FixedPairOffline};
use adaedge_core::{OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge_ml::{metrics, Model};

const RATE: f64 = 1_000_000.0; // points per second
const BUDGET: usize = 10_000_000;
const TOTAL_SEGMENTS: usize = 8000; // ≈8.2 simulated seconds
/// Uncompressed-buffer capacity in segments.
const BUFFER_SEGMENTS: f64 = 16.0;

fn final_accuracy(model: &Model, pairs: &[(Vec<f64>, Vec<f64>)]) -> f64 {
    let mut orig_rows = Vec::new();
    let mut lossy_rows = Vec::new();
    for (orig, rec) in pairs {
        for (o, l) in orig
            .chunks_exact(INSTANCE_LEN)
            .zip(rec.chunks_exact(INSTANCE_LEN))
        {
            orig_rows.push(o.to_vec());
            lossy_rows.push(l.to_vec());
        }
    }
    metrics::ml_accuracy(model, &orig_rows, &lossy_rows)
}

/// Simulated-time bookkeeping shared by all methods.
struct Clock {
    period: f64,
    completion: f64,
}

impl Clock {
    fn new() -> Self {
        Self {
            period: SEGMENT_LEN as f64 / RATE,
            completion: 0.0,
        }
    }

    /// Advance by one ingest taking `compute` seconds. Returns the backlog
    /// in segments, or `None` on buffer overflow.
    fn step(&mut self, i: usize, compute: f64) -> Option<f64> {
        let arrival = i as f64 * self.period;
        self.completion = self.completion.max(arrival) + compute;
        let backlog = (self.completion - arrival) / self.period;
        (backlog <= BUFFER_SEGMENTS).then_some(backlog)
    }

    fn now(&self, i: usize) -> f64 {
        i as f64 * self.period
    }
}

fn main() {
    let model = frozen_model(ModelKind::KMeans, 17);
    println!(
        "Figure 14: high-frequency signal ({} Mpts/s), budget {} KB, {} segments (~{:.1} s)\n",
        RATE / 1e6,
        BUDGET / 1000,
        TOTAL_SEGMENTS,
        TOTAL_SEGMENTS as f64 * SEGMENT_LEN as f64 / RATE
    );
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "method", "outcome", "final loss", "max backlog"
    );

    // mab_mab.
    {
        let mut config = OfflineConfig::new(BUDGET, OptimizationTarget::ml());
        config.model = Some(model.clone());
        config.instance_len = INSTANCE_LEN;
        let mut edge = OfflineAdaEdge::new(config).expect("valid config");
        let mut src = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
        let mut clock = Clock::new();
        let mut max_backlog = 0.0f64;
        let mut failure = None;
        for i in 0..TOTAL_SEGMENTS {
            match edge.ingest(&src.next_segment()) {
                Ok(report) => {
                    let compute = report.selection.seconds + report.recode_seconds;
                    match clock.step(i, compute) {
                        Some(b) => max_backlog = max_backlog.max(b),
                        None => {
                            failure = Some(("buffer overflow", clock.now(i)));
                            break;
                        }
                    }
                }
                Err(_) => {
                    failure = Some(("budget breach", clock.now(i)));
                    break;
                }
            }
        }
        match failure {
            None => {
                let pairs: Vec<(Vec<f64>, Vec<f64>)> = edge
                    .reconstruct_all()
                    .unwrap()
                    .into_iter()
                    .map(|(_, rec, orig)| (orig.expect("kept"), rec))
                    .collect();
                println!(
                    "{:<22} {:>10} {:>14.4} {:>12.1}",
                    "mab_mab",
                    "ok",
                    1.0 - final_accuracy(&model, &pairs),
                    max_backlog
                );
            }
            Some((why, t)) => {
                println!(
                    "{:<22} {:>10} FAILED at {:.1}s ({})",
                    "mab_mab", "FAIL", t, why
                );
            }
        }
    }

    // Fixed pairs including the paper's gorilla-based failures.
    let pairs = vec![
        FixedPair::new(CodecId::Gzip, CodecId::BuffLossy),
        FixedPair::new(CodecId::Buff, CodecId::BuffLossy),
        FixedPair::new(CodecId::Sprintz, CodecId::BuffLossy),
        FixedPair::new(CodecId::Sprintz, CodecId::Fft),
        FixedPair::new(CodecId::Gorilla, CodecId::Fft),
        FixedPair::new(CodecId::Gorilla, CodecId::Pla),
    ];
    for pair in pairs {
        let mut driver = FixedPairOffline::new(pair, BUDGET, 4);
        let mut src = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
        let mut clock = Clock::new();
        let mut max_backlog = 0.0f64;
        let mut failure = None;
        let mut prev_compute = 0.0;
        for i in 0..TOTAL_SEGMENTS {
            match driver.ingest(&src.next_segment()) {
                Ok(()) => {
                    let compute = driver.compute_seconds - prev_compute;
                    prev_compute = driver.compute_seconds;
                    match clock.step(i, compute) {
                        Some(b) => max_backlog = max_backlog.max(b),
                        None => {
                            failure = Some(("buffer overflow", clock.now(i)));
                            break;
                        }
                    }
                }
                Err(_) => {
                    failure = Some(("budget breach", clock.now(i)));
                    break;
                }
            }
        }
        match failure {
            None => {
                let rec = driver.reconstruct_all().unwrap();
                println!(
                    "{:<22} {:>10} {:>14.4} {:>12.1}",
                    driver.name(),
                    "ok",
                    1.0 - final_accuracy(&model, &rec),
                    max_backlog
                );
            }
            Some((why, t)) => {
                println!(
                    "{:<22} {:>10} FAILED at {:.1}s ({})",
                    driver.name(),
                    "FAIL",
                    t,
                    why
                );
            }
        }
    }

    println!(
        "\nexpected shape (paper): the top pairs behave like the low-rate \
         experiment on a compressed time scale; slow pairs (gorilla-based \
         recodes that must fully decompress, PLA's expensive knot search, \
         gzip's deep match search) build backlog and fail around 8 s; \
         AdaEdge stays feasible by selecting fast arms and recoding with \
         virtual decompression."
    );
}
