//! Figure 2: can each codec keep up with a 4 M points/s signal?
//!
//! Bars = compression throughput (points/s at full speed) per codec; the
//! line = the signal generation rate. Gzip-class codecs fall below the
//! line, the lightweight encodings and lossy representations clear it.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig02_ingest_rate`

use adaedge_bench::SEGMENT_LEN;
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use std::time::Instant;

/// The paper's example signal rate (a typical oil-well platform).
const SIGNAL_RATE: f64 = 4_000_000.0;
/// Measurement window per codec.
const MEASURE_SECS: f64 = 0.25;

fn main() {
    let reg = CodecRegistry::new(4);
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    // A pool of segments so codecs see varied data.
    let segments: Vec<Vec<f64>> = (0..32).map(|_| stream.next_segment()).collect();

    println!("Figure 2: compression ingest rate vs a {SIGNAL_RATE:.0} points/s signal");
    println!("(* marks lossy compression, tuned to ratio 0.25)\n");
    println!("{:>14} {:>16} {:>10}", "codec", "points/s", "keeps up?");

    let mut rows: Vec<(String, f64)> = Vec::new();
    let codecs: Vec<CodecId> = CodecRegistry::extended_lossless_candidates()
        .into_iter()
        .chain(CodecRegistry::lossy_candidates())
        .collect();
    for id in codecs {
        let mut points = 0u64;
        let start = Instant::now();
        let mut i = 0usize;
        while start.elapsed().as_secs_f64() < MEASURE_SECS {
            let data = &segments[i % segments.len()];
            i += 1;
            let ok = if let Some(lossy) = reg.get_lossy(id) {
                lossy.compress_to_ratio(data, 0.25).is_ok()
            } else {
                reg.get(id).compress(data).is_ok()
            };
            if ok {
                points += data.len() as u64;
            }
        }
        let rate = points as f64 / start.elapsed().as_secs_f64();
        let label = if id.is_lossless() {
            id.name().to_string()
        } else {
            format!("{}*", id.name())
        };
        rows.push((label, rate));
    }

    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (label, rate) in &rows {
        println!(
            "{:>14} {:>16.0} {:>10}",
            label,
            rate,
            if *rate >= SIGNAL_RATE { "yes" } else { "NO" }
        );
    }
    println!("\nsignal rate line: {SIGNAL_RATE:.0} points/s");
    println!(
        "expected shape (paper): gzip-class arms fall below the line; \
         lightweight and lossy arms clear it."
    );
}
