//! Uplink goodput under loss: does pressure-driven degradation pay?
//!
//! A virtual-time closed loop: a sensor produces one 256-point segment
//! every few ticks, a selector picks the codec, and the compressed
//! record is offered to a real `Uplink` over a `FaultyLink` with a hard
//! capacity of one frame per tick. Because the link — not the CPU — is
//! the bottleneck, every byte of compression ratio buys goodput, and
//! every retransmit burned on a badly-compressed segment costs it.
//!
//! Three policies compete at each loss rate (0 / 1 / 5 / 20 %):
//!
//! * `fixed-snappy`   — the classic static choice: fast, weak ratio.
//! * `adaptive`       — ε-greedy selection, blind to link health.
//! * `adaptive+degrade` — same selector, but biased by the uplink's own
//!   `PressureGauge` (`select_arm_biased`): elevated backlog damps
//!   exploration, critical backlog exploits the best-ratio arm only.
//!
//! Goodput counts **raw (pre-compression) bytes released in capture
//! order at the receiver per tick** — the number the paper's edge
//! operator cares about. Virtual time makes every cell exactly
//! reproducible per seed; the spread reported is across seeds, not
//! wall-clock noise.
//!
//! Usage: `uplink_goodput [--quick]`

use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::selector::ArmOutcome;
use adaedge_core::{
    BackoffConfig, BreakerConfig, FaultSpec, FaultyLink, FrameConfig, LosslessSelector,
    SelectorConfig, Transport, Uplink, UplinkConfig,
};
use adaedge_datasets::{SegmentSource, SineStream};
use std::collections::VecDeque;

const SEG_LEN: usize = 256;
const RAW_BYTES: usize = SEG_LEN * 8;
const PRODUCE_EVERY: u64 = 1;
const LOSS_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    FixedSnappy,
    Adaptive,
    Degrade,
}

impl Policy {
    fn name(self) -> &'static str {
        match self {
            Policy::FixedSnappy => "fixed-snappy",
            Policy::Adaptive => "adaptive",
            Policy::Degrade => "adaptive+degrade",
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    goodput: f64, // raw bytes released per tick
    segments: u64,
    retries: u64,
    degraded_picks: u64,
    picks: u64,
    backlog_end: u64,
}

fn run_once(policy: Policy, loss: f64, seed: u64, ticks: u64) -> Sample {
    let registry = CodecRegistry::new(4);
    let arms = CodecRegistry::lossless_candidates();
    let mut selector = LosslessSelector::new(
        arms,
        SelectorConfig {
            seed,
            ..SelectorConfig::default()
        },
    );
    let mut up = Uplink::new(UplinkConfig {
        frame: FrameConfig {
            payload_cap: 640,
            fragment_overhead: 12,
        },
        window: 8,
        deadline_ticks: 24,
        max_retries: 20,
        frames_per_tick: 1, // the link capacity that makes ratio matter
        backoff: BackoffConfig {
            base_ticks: 2,
            max_ticks: 16,
            jitter: 0.25,
        },
        breaker: BreakerConfig {
            trip_after: 10_000, // lossy, not dead: the breaker stays out of it
            open_ticks: 64,
            probes_to_close: 2,
        },
        seed,
        ..UplinkConfig::default()
    });
    let gauge = up.pressure();
    let mut rx = adaedge_core::Receiver::new();
    let mut link = FaultyLink::new(FaultSpec::lossy(2, loss), seed.wrapping_mul(0x9E37_79B9));
    let mut stream = SineStream::new(SEG_LEN, 0.1, 4, seed);

    let mut queue: VecDeque<(u64, Vec<u8>)> = VecDeque::new();
    let mut produced = 0u64;
    let mut out = Sample::default();

    for now in 0..ticks {
        for frame in link.poll_frames(now) {
            if let Some(ack) = rx.on_frame(&frame) {
                link.send_ack(now, ack);
            }
        }
        out.segments += rx.take_ordered().len() as u64;
        up.tick(now, &mut link);
        debug_assert!(up.take_rewind().is_empty(), "breaker must stay closed");

        if now.is_multiple_of(PRODUCE_EVERY) {
            produced += 1;
            let seg = stream.next_segment();
            let (arm, codec) = match policy {
                Policy::FixedSnappy => (usize::MAX, CodecId::Snappy),
                Policy::Adaptive => selector.select_arm(),
                Policy::Degrade => {
                    let level = gauge.level();
                    if level != adaedge_core::LinkPressure::Nominal {
                        out.degraded_picks += 1;
                    }
                    selector.select_arm_biased(level)
                }
            };
            out.picks += 1;
            let block = registry
                .get(codec)
                .compress(&seg)
                .expect("lossless compress on finite data");
            if policy != Policy::FixedSnappy {
                selector.report_batch(arm, &[ArmOutcome::Ratio(block.ratio())]);
            }
            queue.push_back((produced, block.payload));
        }

        while !queue.is_empty() && up.can_accept(now) {
            let (seq, payload) = queue.pop_front().expect("non-empty");
            assert!(up.offer(now, seq, payload));
        }
        up.set_external_backlog(queue.len());
    }

    out.retries = up.counters().retries;
    out.backlog_end = up.backlog() as u64 + queue.len() as u64;
    out.goodput = (out.segments as usize * RAW_BYTES) as f64 / ticks as f64;
    out
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

struct Row {
    policy: &'static str,
    loss: f64,
    goodput_med: f64,
    goodput_sd: f64,
    segments_med: f64,
    retries_med: f64,
    degraded_pct_med: f64,
    backlog_med: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeats = if quick { 2 } else { 5 };
    let ticks: u64 = if quick { 1_500 } else { 6_000 };

    // Untimed warm-up: shakes out lazy init so it cannot skew the first
    // cell (virtual time is deterministic, but keep the bench honest).
    let _ = run_once(Policy::Adaptive, 0.05, 999, ticks / 4);

    let mut rows: Vec<Row> = Vec::new();
    for &policy in &[Policy::FixedSnappy, Policy::Adaptive, Policy::Degrade] {
        for &loss in &LOSS_RATES {
            let mut goodput = Vec::new();
            let mut segments = Vec::new();
            let mut retries = Vec::new();
            let mut degraded = Vec::new();
            let mut backlog = Vec::new();
            for rep in 0..repeats {
                let s = run_once(policy, loss, 11 + rep as u64, ticks);
                goodput.push(s.goodput);
                segments.push(s.segments as f64);
                retries.push(s.retries as f64);
                degraded.push(if s.picks == 0 {
                    0.0
                } else {
                    100.0 * s.degraded_picks as f64 / s.picks as f64
                });
                backlog.push(s.backlog_end as f64);
            }
            rows.push(Row {
                policy: policy.name(),
                loss,
                goodput_med: median(&mut goodput),
                goodput_sd: stddev(&goodput),
                segments_med: median(&mut segments),
                retries_med: median(&mut retries),
                degraded_pct_med: median(&mut degraded),
                backlog_med: median(&mut backlog),
            });
        }
    }

    println!(
        "uplink goodput vs loss  (ticks={ticks}, seg={SEG_LEN}pts, produce 1/{PRODUCE_EVERY} ticks, 1 frame/tick, repeats={repeats})"
    );
    println!(
        "{:<18} {:>6} {:>14} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "policy", "loss%", "raw B/tick", "±sd", "segments", "retries", "degraded%", "backlog"
    );
    for r in &rows {
        println!(
            "{:<18} {:>6.1} {:>14.1} {:>10.1} {:>9.0} {:>9.0} {:>10.1} {:>9.0}",
            r.policy,
            r.loss * 100.0,
            r.goodput_med,
            r.goodput_sd,
            r.segments_med,
            r.retries_med,
            r.degraded_pct_med,
            r.backlog_med
        );
    }

    // Acceptance spotlight: at the highest loss rate, degradation must
    // out-deliver both the static arm and the pressure-blind selector.
    let at = |p: &str, l: f64| {
        rows.iter()
            .find(|r| r.policy == p && (r.loss - l).abs() < 1e-9)
            .expect("row exists")
            .goodput_med
    };
    let hi = LOSS_RATES[LOSS_RATES.len() - 1];
    println!(
        "\nat {:.0}% loss: degrade {:.1} vs adaptive {:.1} vs fixed {:.1} raw B/tick",
        hi * 100.0,
        at("adaptive+degrade", hi),
        at("adaptive", hi),
        at("fixed-snappy", hi)
    );

    let mut results = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "\n    {{\"policy\": \"{}\", \"loss\": {}, \"goodput_raw_bytes_per_tick\": {{\"median\": {:.3}, \"stddev\": {:.3}}}, \"segments_delivered\": {:.0}, \"retries\": {:.0}, \"degraded_pick_pct\": {:.2}, \"backlog_end\": {:.0}}}",
            r.policy, r.loss, r.goodput_med, r.goodput_sd, r.segments_med, r.retries_med,
            r.degraded_pct_med, r.backlog_med
        ));
    }
    println!("\nJSON:");
    println!(
        "{{\n  \"bench\": \"uplink_goodput\",\n  \"ticks\": {ticks},\n  \"segment_points\": {SEG_LEN},\n  \"produce_every_ticks\": {PRODUCE_EVERY},\n  \"frames_per_tick\": 1,\n  \"payload_cap\": 640,\n  \"repeats\": {repeats},\n  \"statistic\": \"median\",\n  \"results\": [{results}\n  ],\n  \"notes\": [\n    \"virtual-time closed loop: goodput = raw (pre-compression) bytes released in capture order per tick\",\n    \"link capacity 1 frame/tick makes compression ratio the goodput lever; retransmits burn capacity\",\n    \"adaptive+degrade biases selection by the uplink's own pressure gauge (elevated: damped exploration, critical: best-arm exploitation)\",\n    \"spread is across seeds; each cell is exactly reproducible per seed\"\n  ]\n}}"
    );
}
