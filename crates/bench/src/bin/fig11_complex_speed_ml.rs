//! Figure 11: complex target — w1·C_thr + w2·Acc_RF with w1 = 0.524,
//! w2 = 0.476 — over the target compression ratio (higher is better).
//!
//! Compression throughput is min–max normalized across the methods in the
//! figure, as in §IV-D. The paper reports a PAA ↔ BUFF-lossy crossover
//! around ratio 0.25, with the MAB handling it.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig11_complex_speed_ml`

use adaedge_bench::harness::mean;
use adaedge_bench::{
    frozen_model, print_table, ratio_sweep, MethodSeries, ModelKind, INSTANCE_LEN, SEGMENT_LEN,
};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::{
    Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget, RewardEvaluator, TargetComponent,
};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use std::collections::HashMap;
use std::time::Instant;

const SEGMENTS: usize = 100;
const WARMUP: usize = 40;
const W1: f64 = 0.524;
const W2: f64 = 0.476;

fn main() {
    let sweep = ratio_sweep();
    let reg = CodecRegistry::new(4);
    let model = frozen_model(ModelKind::RForest, 17);
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    let segments: Vec<Vec<f64>> = (0..SEGMENTS).map(|_| stream.next_segment()).collect();
    let eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model.clone()), INSTANCE_LEN);

    println!(
        "Figure 11: complex target w1*C_thr + w2*Acc_rforest (w1={W1}, w2={W2});\nhigher is better\n"
    );

    // Pass 1: measure per (codec, ratio) mean throughput and ML accuracy.
    struct Cell {
        throughput: f64,
        accuracy: f64,
    }
    let mut cells: HashMap<(CodecId, usize), Option<Cell>> = HashMap::new();
    let arms = CodecRegistry::lossy_candidates();
    for (ri, &ratio) in sweep.iter().enumerate() {
        for &codec in &arms {
            let lossy = reg.get_lossy(codec).unwrap();
            let mut thrs = Vec::new();
            let mut accs = Vec::new();
            let mut failed = false;
            for seg in &segments {
                let t0 = Instant::now();
                match lossy.compress_to_ratio(seg, ratio) {
                    Ok(block) => {
                        let secs = t0.elapsed().as_secs_f64().max(1e-9);
                        thrs.push((seg.len() * 8) as f64 / secs);
                        let rec = reg.decompress(&block).unwrap();
                        accs.push(eval.ml_accuracy(seg, &rec));
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            cells.insert(
                (codec, ri),
                (!failed).then(|| Cell {
                    throughput: mean(&thrs),
                    accuracy: mean(&accs),
                }),
            );
        }
    }
    // Global min–max normalization of throughput across the figure.
    let thr_values: Vec<f64> = cells.values().flatten().map(|c| c.throughput).collect();
    let (tmin, tmax) = (
        thr_values.iter().cloned().fold(f64::INFINITY, f64::min),
        thr_values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let norm = |thr: f64| {
        if tmax > tmin {
            ((thr - tmin) / (tmax - tmin)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    };

    let mut series = Vec::new();

    // MAB: online pipeline optimizing throughput + ML accuracy; its figure
    // value reuses the global normalization for comparability.
    let target = OptimizationTarget::complex(vec![
        (W1, TargetComponent::Throughput),
        (W2, TargetComponent::MlAccuracy),
    ]);
    let mut mab = MethodSeries::new("mab");
    for &ratio in &sweep {
        let constraints = Constraints::online(100_000.0, ratio * 64.0 * 100_000.0, SEGMENT_LEN);
        let mut config = OnlineConfig::new(constraints, target.clone());
        config.model = Some(model.clone());
        config.instance_len = INSTANCE_LEN;
        // Force the lossy path so the figure isolates lossy selection, as
        // the paper's Figure 11 candidates are all lossy.
        config.lossless_arms = vec![CodecId::Raw];
        let mut edge = OnlineAdaEdge::new(config).expect("valid config");
        let mut vals = Vec::new();
        let mut failed = false;
        for seg in &segments {
            match edge.process_segment(seg) {
                Ok(out) => {
                    // Compression time only (selection.seconds); the reward
                    // evaluation runs on its own thread in the paper's setup
                    // and must not count against C_thr.
                    let thr = (seg.len() * 8) as f64 / out.selection.seconds.max(1e-9);
                    let rec = edge.registry().decompress(&out.selection.block).unwrap();
                    vals.push(W1 * norm(thr) + W2 * eval.ml_accuracy(seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        mab.push((!failed).then(|| mean(&vals[WARMUP.min(vals.len())..])));
    }
    series.push(mab);

    for &codec in &arms {
        let mut s = MethodSeries::new(codec.name());
        for ri in 0..sweep.len() {
            let v = cells[&(codec, ri)]
                .as_ref()
                .map(|c| W1 * norm(c.throughput) + W2 * c.accuracy);
            s.push(v);
        }
        series.push(s);
    }

    print_table(
        "Fig 11 speed + accuracy target value",
        "ratio",
        &sweep,
        &series,
        4,
    );
    println!(
        "\nexpected shape (paper): a crossover between PAA (fast) and \
         BUFF-lossy (accurate) near ratio 0.25; the MAB follows the winner; \
         PLA (slow knot search) trails."
    );
}
