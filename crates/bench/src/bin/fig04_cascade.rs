//! Figure 4 (made observable): the offline cascade applies different
//! levels of compression to earlier segments as new data keeps arriving —
//! each red rectangle in the paper's diagram is a segment whose length is
//! its current size.
//!
//! This binary prints the store's per-segment compression levels at a few
//! points during ingestion, rendering each segment as a bar proportional
//! to its current ratio.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig04_cascade`

use adaedge_bench::SEGMENT_LEN;
use adaedge_core::{AggKind, OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};

const BUDGET: usize = 120_000;
const TOTAL: usize = 120;

fn render(edge: &OfflineAdaEdge, after: usize) {
    println!(
        "\nafter {after} ingested segments (utilization {:.1}%):",
        edge.utilization() * 100.0
    );
    // Oldest on top, like the paper's diagram. Sample every few segments to
    // keep the rendering short.
    let ids = edge.store().ids();
    let step = (ids.len() / 12).max(1);
    for id in ids.iter().step_by(step) {
        let seg = edge.store().peek(*id).expect("listed id");
        let ratio = seg.ratio();
        let width = (ratio * 48.0).ceil().max(1.0) as usize;
        let codec = seg.block().map(|b| b.codec.name()).unwrap_or("raw");
        println!(
            "  {:>7} {:<10} r={ratio:>6.4} {}",
            format!("{}", seg.id),
            codec,
            "#".repeat(width)
        );
    }
}

fn main() {
    println!(
        "Figure 4: cascade compression in offline mode — new data stays \
         lossless while older segments are recoded to ever more aggressive \
         levels (budget {} KB, theta = 0.8).",
        BUDGET / 1000
    );
    let config = OfflineConfig::new(BUDGET, OptimizationTarget::agg(AggKind::Sum));
    let mut edge = OfflineAdaEdge::new(config).expect("valid config");
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    for i in 1..=TOTAL {
        edge.ingest(&stream.next_segment()).expect("within budget");
        if [TOTAL / 8, TOTAL / 3, TOTAL].contains(&i) {
            render(&edge, i);
        }
    }
    println!(
        "\nexpected shape (paper Fig 4): early snapshots show uniform \
         lossless bars; later snapshots show a staircase — old segments \
         short (aggressively recoded), recent segments long (lossless)."
    );
}
