//! End-to-end online-engine throughput: segments/s through the full
//! ingest → sharded queues → replica-MAB select → compress pipeline at
//! 1/2/4/8 shards (worker threads — the §V-C scalability axis, measured at
//! the segment granularity the allocation work targets), at batch size
//! K = 1 (exact per-segment bandit) and K = 8 (sticky-arm batching).
//!
//! The signal pool is pre-generated (`CycleSource`) so the measurement
//! isolates the pipeline itself; the MAB runs with its default online
//! hyper-parameters and converges to the lightweight arms, which is the
//! steady state the zero-allocation path optimizes.
//!
//! Each configuration reports the **median of N timed runs** with the
//! sample standard deviation alongside — not best-of-N, which on a noisy
//! shared host systematically flatters whichever run got lucky. A
//! scaling-efficiency column normalizes each shard count against the
//! 1-shard median at the same K (`seg/s ÷ shards ÷ 1-shard seg/s`), and
//! the host's core count is recorded so oversubscribed rows — more shards
//! than cores, where "scaling" is really time-slicing — are flagged
//! rather than misread.
//!
//! Run: `cargo run --release -p adaedge-bench --bin engine_throughput`
//! (`-- --quick` for the CI smoke configuration). Prints a table and a
//! JSON object suitable for `BENCH_engine.json`.

use adaedge_core::engine::{run_pipeline, EngineConfig, EngineReport};
use adaedge_datasets::{CycleSource, SineStream};

const SEGMENT_LEN: usize = 1000;
const POOL: usize = 64;
const BATCH_SIZES: [usize; 2] = [1, 8];

fn run_once(threads: usize, batch: usize, segments: usize) -> EngineReport {
    let mut sine = SineStream::new(SEGMENT_LEN, 0.1, 4, 7);
    let mut source = CycleSource::pregenerate(&mut sine, POOL);
    let config = EngineConfig {
        n_compression_threads: threads,
        batch_segments: batch,
        ..Default::default()
    };
    run_pipeline(&mut source, segments, &config).expect("pipeline")
}

/// Median of a sample (odd-preferring: even lengths average the middle two).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Sample standard deviation (n-1 denominator; 0 for a single run).
fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

struct Row {
    threads: usize,
    batch: usize,
    median_seg_per_sec: f64,
    stddev_seg_per_sec: f64,
    egress_ratio: f64,
    /// Per-thread throughput relative to the 1-shard median at the same K:
    /// `(seg/s ÷ threads) ÷ seg/s(1 shard)`. 1.0 = perfect linear scaling.
    efficiency_vs_1t: f64,
    stolen_batches: u64,
    oversubscribed: bool,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let segments = if quick { 300 } else { 6000 };
    let repeats = if quick { 1 } else { 5 };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "Engine throughput: {segments} segments x {SEGMENT_LEN} points, median of {repeats} (+/- sample stddev), host cores: {host_parallelism}"
    );
    println!(
        "{:>8} {:>6} {:>16} {:>12} {:>12} {:>10} {:>8} {:>6}",
        "shards", "K", "segments/s", "stddev", "egress", "eff/1T", "stolen", "over?"
    );

    let mut rows: Vec<Row> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for batch in BATCH_SIZES {
            // One untimed warm-up run per configuration.
            run_once(threads, batch, segments / 4);
            let mut samples = Vec::with_capacity(repeats);
            let mut egress = 0.0;
            let mut stolen = 0u64;
            for _ in 0..repeats {
                let report = run_once(threads, batch, segments);
                samples.push(report.points_per_sec / SEGMENT_LEN as f64);
                egress = report.bytes_out as f64 / report.bytes_in as f64;
                stolen = report.stolen_batches;
            }
            let sd = stddev(&samples);
            let med = median(&mut samples);
            let base = rows
                .iter()
                .find(|r| r.threads == 1 && r.batch == batch)
                .map(|r| r.median_seg_per_sec)
                .unwrap_or(med);
            let eff = if base > 0.0 {
                med / threads as f64 / base
            } else {
                0.0
            };
            let oversubscribed = threads > host_parallelism;
            println!(
                "{threads:>8} {batch:>6} {med:>16.0} {sd:>12.0} {egress:>12.4} {eff:>10.2} {stolen:>8} {:>6}",
                if oversubscribed { "yes" } else { "" }
            );
            rows.push(Row {
                threads,
                batch,
                median_seg_per_sec: med,
                stddev_seg_per_sec: sd,
                egress_ratio: egress,
                efficiency_vs_1t: eff,
                stolen_batches: stolen,
                oversubscribed,
            });
        }
    }

    let oversubscribed_counts: Vec<usize> = rows
        .iter()
        .filter(|r| r.oversubscribed)
        .map(|r| r.threads)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    println!("\nJSON:");
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"segment_len\": {SEGMENT_LEN},\n  \"segments\": {segments},\n  \"repeats\": {repeats},\n  \"statistic\": \"median\",\n  \"host_parallelism\": {host_parallelism},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"shards\": {}, \"batch_segments\": {}, \"segments_per_sec\": {:.0}, \"stddev\": {:.0}, \"egress_ratio\": {:.4}, \"efficiency_vs_1t\": {:.2}, \"stolen_batches\": {}, \"oversubscribed\": {} }}{}\n",
            row.threads,
            row.batch,
            row.median_seg_per_sec,
            row.stddev_seg_per_sec,
            row.egress_ratio,
            row.efficiency_vs_1t,
            row.stolen_batches,
            row.oversubscribed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"notes\": [\n    \
         \"Each figure is the median of N timed runs after one untimed warm-up; the sample standard deviation (n-1) is reported alongside. Median-of-N replaced best-of-N: on a noisy single-core host best-of-N converges to the luckiest scheduling interleave and overstates steady-state throughput.\",\n    \
         \"Each shard (worker thread) runs its own bounded queue, recycle pool and replica selector; arm decisions are lock-free and replicas delta-sync through an atomic outcome table. efficiency_vs_1t is (seg/s / shards) / seg/s(1 shard) at the same K: 1.0 is perfect linear scaling.\",\n    \
         \"batch_segments=1 is the exact per-segment bandit (one lock-free replica decision per segment); batch_segments=8 holds one arm sticky across each batch and publishes rewards as one atomic delta per batch.\",\n    \
         \"Egress ratio is taken from the last run of each configuration; arm selection is seeded, so run-to-run egress drift is epsilon-greedy exploration noise only.\"",
    );
    if oversubscribed_counts.is_empty() {
        json.push_str("\n  ]\n");
    } else {
        json.push_str(&format!(
            ",\n    \"WARNING: shard counts {oversubscribed_counts:?} exceed the host's {host_parallelism} core(s); those rows measure time-slicing overhead, not parallel scaling, and per-thread efficiency there is expected to fall below 1/shards.\"\n  ]\n"
        ));
    }
    json.push('}');
    println!("{json}");
}
