//! End-to-end online-engine throughput: segments/s through the full
//! ingest → bounded buffer → MAB select → compress pipeline at 1/2/4/8
//! worker threads (the §V-C scalability axis, measured at the segment
//! granularity the allocation work targets).
//!
//! The signal pool is pre-generated (`CycleSource`) so the measurement
//! isolates the pipeline itself; the MAB runs with its default online
//! hyper-parameters and converges to the lightweight arms, which is the
//! steady state the zero-allocation path optimizes.
//!
//! Run: `cargo run --release -p adaedge-bench --bin engine_throughput`
//! (`-- --quick` for the CI smoke configuration). Prints a table and a
//! JSON object suitable for `BENCH_engine.json`.

use adaedge_core::engine::{run_pipeline, EngineConfig, EngineReport};
use adaedge_datasets::{CycleSource, SineStream};

const SEGMENT_LEN: usize = 1000;
const POOL: usize = 64;

fn run_once(threads: usize, segments: usize) -> EngineReport {
    let mut sine = SineStream::new(SEGMENT_LEN, 0.1, 4, 7);
    let mut source = CycleSource::pregenerate(&mut sine, POOL);
    let config = EngineConfig {
        n_compression_threads: threads,
        ..Default::default()
    };
    run_pipeline(&mut source, segments, &config).expect("pipeline")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let segments = if quick { 300 } else { 6000 };
    let repeats = if quick { 1 } else { 5 };

    println!("Engine throughput: {segments} segments x {SEGMENT_LEN} points, best of {repeats}");
    println!(
        "{:>8} {:>14} {:>16} {:>12} {:>10}",
        "threads", "segments/s", "points/s", "egress", "seconds"
    );

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        // One untimed warm-up run per thread count.
        run_once(threads, segments / 4);
        let mut best: Option<EngineReport> = None;
        for _ in 0..repeats {
            let report = run_once(threads, segments);
            if best
                .as_ref()
                .map(|b| report.points_per_sec > b.points_per_sec)
                .unwrap_or(true)
            {
                best = Some(report);
            }
        }
        let report = best.expect("at least one run");
        let seg_per_sec = report.points_per_sec / SEGMENT_LEN as f64;
        println!(
            "{:>8} {:>14.0} {:>16.0} {:>12.4} {:>10.3}",
            threads,
            seg_per_sec,
            report.points_per_sec,
            report.bytes_out as f64 / report.bytes_in as f64,
            report.elapsed_seconds
        );
        rows.push((threads, seg_per_sec, report));
    }

    println!("\nJSON:");
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"segment_len\": {SEGMENT_LEN},\n  \"segments\": {segments},\n  \"repeats\": {repeats},\n"
    ));
    json.push_str("  \"threads\": {\n");
    for (i, (threads, seg_per_sec, report)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{threads}\": {{ \"segments_per_sec\": {:.0}, \"points_per_sec\": {:.0}, \"egress_ratio\": {:.4} }}{}\n",
            seg_per_sec,
            report.points_per_sec,
            report.bytes_out as f64 / report.bytes_in as f64,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}");
    println!("{json}");
}
