//! Durable-spool sustained-write, recovery-scan and replay throughput.
//!
//! Three phases per configuration, all on a private temp directory:
//!
//! 1. **Append**: sequential spool writes at a fixed payload size, with
//!    batched `fdatasync` (one sync per `sync_every` records — the
//!    ADR's ~1s batching at a deterministic record granularity) or a
//!    paranoid per-append sync as the contrast row.
//! 2. **Recovery**: drop the handle and time a cold `Spool::open`, i.e.
//!    the full tail-scan CRC validation over every segment on disk —
//!    the crash-restart cost a 48h backlog pays once at boot.
//! 3. **Replay**: time a full capture-order drain through the
//!    `Replayer` (read + CRC + frame decode, no packing).
//!
//! Each configuration reports the **median of N timed runs** with the
//! sample standard deviation alongside (matching the engine bench's
//! discipline — not best-of-N).
//!
//! Run: `cargo run --release -p adaedge-bench --bin spool_throughput`
//! (`-- --quick` for the CI smoke configuration). Prints a table and a
//! JSON object suitable for `BENCH_spool.json`.

use adaedge_storage::spool::{ReplayItem, Spool, SpoolConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One benchmark configuration.
struct Cfg {
    payload: usize,
    records: usize,
    /// Records per explicit `fdatasync` (1 = sync every append).
    sync_every: usize,
}

struct Sample {
    append_recs_per_sec: f64,
    append_mb_per_sec: f64,
    recover_secs: f64,
    recover_mb_per_sec: f64,
    replay_recs_per_sec: f64,
}

fn bench_dir() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("adaedge-spool-bench-{}", std::process::id()));
    p
}

fn run_once(cfg: &Cfg) -> Sample {
    let dir = bench_dir();
    std::fs::remove_dir_all(&dir).ok();
    let mut scfg = SpoolConfig::new(&dir);
    scfg.segment_max_bytes = 1 << 20;
    // Sync cadence is driven explicitly below so runs are deterministic.
    scfg.sync_interval = Duration::from_secs(3600);
    let mut spool = Spool::open(scfg.clone()).expect("open");

    let payload = vec![0xA5u8; cfg.payload];
    let t0 = Instant::now();
    for i in 0..cfg.records {
        spool.append(i as u64, &payload).expect("append");
        if (i + 1) % cfg.sync_every == 0 {
            spool.sync().expect("sync");
        }
    }
    spool.sync().expect("final sync");
    let append_secs = t0.elapsed().as_secs_f64();
    let bytes = spool.stats().appended_bytes as f64;
    drop(spool);

    let t1 = Instant::now();
    let mut spool = Spool::open(scfg).expect("recover");
    let recover_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        spool.stats().records as usize,
        cfg.records,
        "lossless recovery"
    );

    let t2 = Instant::now();
    let mut replayed = 0usize;
    for item in spool.replayer(0).expect("replayer") {
        match item {
            ReplayItem::Record(r) => {
                assert_eq!(r.payload.len(), cfg.payload);
                replayed += 1;
            }
            ReplayItem::Gap { .. } => panic!("healthy spool has no gaps"),
        }
    }
    let replay_secs = t2.elapsed().as_secs_f64();
    assert_eq!(replayed, cfg.records, "replay is complete");

    drop(spool);
    std::fs::remove_dir_all(&dir).ok();

    Sample {
        append_recs_per_sec: cfg.records as f64 / append_secs,
        append_mb_per_sec: bytes / append_secs / 1e6,
        recover_secs,
        recover_mb_per_sec: bytes / recover_secs / 1e6,
        replay_recs_per_sec: cfg.records as f64 / replay_secs,
    }
}

/// Median of a sample (even lengths average the middle two).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Sample standard deviation (n-1 denominator; 0 for a single run).
fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

struct Row {
    payload: usize,
    records: usize,
    sync_every: usize,
    append_recs: f64,
    append_recs_sd: f64,
    append_mb: f64,
    recover_ms: f64,
    recover_mb: f64,
    replay_recs: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeats = if quick { 1 } else { 5 };
    let scale = if quick { 8 } else { 1 };

    // Batched-sync rows across payload sizes, plus one per-append-sync
    // contrast row: the cost the ~1s fdatasync batching buys back.
    let cfgs = [
        Cfg {
            payload: 64,
            records: 40_000 / scale,
            sync_every: 1024,
        },
        Cfg {
            payload: 512,
            records: 40_000 / scale,
            sync_every: 1024,
        },
        Cfg {
            payload: 4096,
            records: 10_000 / scale,
            sync_every: 1024,
        },
        Cfg {
            payload: 512,
            records: 4_000 / scale,
            sync_every: 1,
        },
    ];

    println!(
        "Spool throughput: append / cold-recovery scan / replay, median of {repeats} (+/- sample stddev)"
    );
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "payload",
        "records",
        "sync/N",
        "append rec/s",
        "stddev",
        "MB/s",
        "recover ms",
        "scan MB/s",
        "replay rec/s"
    );

    let mut rows: Vec<Row> = Vec::new();
    for cfg in &cfgs {
        // One untimed warm-up run per configuration.
        run_once(&Cfg {
            payload: cfg.payload,
            records: cfg.records / 4,
            sync_every: cfg.sync_every,
        });
        let mut append = Vec::with_capacity(repeats);
        let mut append_mb = Vec::with_capacity(repeats);
        let mut recover = Vec::with_capacity(repeats);
        let mut recover_mb = Vec::with_capacity(repeats);
        let mut replay = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let s = run_once(cfg);
            append.push(s.append_recs_per_sec);
            append_mb.push(s.append_mb_per_sec);
            recover.push(s.recover_secs);
            recover_mb.push(s.recover_mb_per_sec);
            replay.push(s.replay_recs_per_sec);
        }
        let row = Row {
            payload: cfg.payload,
            records: cfg.records,
            sync_every: cfg.sync_every,
            append_recs_sd: stddev(&append),
            append_recs: median(&mut append),
            append_mb: median(&mut append_mb),
            recover_ms: median(&mut recover) * 1e3,
            recover_mb: median(&mut recover_mb),
            replay_recs: median(&mut replay),
        };
        println!(
            "{:>8} {:>8} {:>10} {:>14.0} {:>10.0} {:>10.1} {:>12.2} {:>10.1} {:>12.0}",
            row.payload,
            row.records,
            row.sync_every,
            row.append_recs,
            row.append_recs_sd,
            row.append_mb,
            row.recover_ms,
            row.recover_mb,
            row.replay_recs
        );
        rows.push(row);
    }

    println!("\nJSON:");
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"repeats\": {repeats},\n  \"statistic\": \"median\",\n  \"segment_max_bytes\": {},\n",
        1u64 << 20
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"payload_bytes\": {}, \"records\": {}, \"sync_every\": {}, \"append_recs_per_sec\": {:.0}, \"stddev\": {:.0}, \"append_mb_per_sec\": {:.1}, \"recover_ms\": {:.2}, \"recover_scan_mb_per_sec\": {:.1}, \"replay_recs_per_sec\": {:.0} }}{}\n",
            r.payload,
            r.records,
            r.sync_every,
            r.append_recs,
            r.append_recs_sd,
            r.append_mb,
            r.recover_ms,
            r.recover_mb,
            r.replay_recs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"notes\": [\n    \
         \"Append is sequential single-write(2) frames with one fdatasync per sync_every records; sync_every=1 is the per-append-sync contrast row showing what the batched policy buys back.\",\n    \
         \"Recovery is a cold Spool::open: full tail-scan CRC-32C validation of every segment on disk (the crash-restart cost of the backlog). Replay is a full capture-order Replayer drain (read + CRC + frame decode, no packing).\",\n    \
         \"Each figure is the median of N timed runs after one untimed warm-up at quarter scale; sample stddev (n-1) alongside.\"\n  ]\n",
    );
    json.push('}');
    println!("{json}");
}
