//! Figure 3: compressed egress rate of a 4 M points/s double signal vs
//! network transmission capacity.
//!
//! Bars = MB/s each codec must ship after compressing the signal; lines =
//! per-network capacity. Under 4G several lossless arms fit; under 3G no
//! lossless arm does — the regime where AdaEdge switches to lossy.
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig03_egress_rate`

use adaedge_bench::SEGMENT_LEN;
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::NetworkProfile;
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};

const SIGNAL_RATE: f64 = 4_000_000.0; // points/s
const RAW_MB_S: f64 = SIGNAL_RATE * 8.0 / 1e6; // 32 MB/s

fn main() {
    let reg = CodecRegistry::new(4);
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    let segments: Vec<Vec<f64>> = (0..16).map(|_| stream.next_segment()).collect();

    println!("Figure 3: egress rate of a 4 M points/s signal ({RAW_MB_S:.1} MB/s raw)\n");
    println!("{:>14} {:>10} {:>12}", "codec", "ratio", "egress MB/s");

    let mut egress: Vec<(String, f64)> = vec![("no-compression".into(), RAW_MB_S)];
    let codecs: Vec<CodecId> = CodecRegistry::lossless_candidates()
        .into_iter()
        .chain([CodecId::Dict])
        .chain(CodecRegistry::lossy_candidates())
        .collect();
    for id in codecs {
        let mut total_ratio = 0.0;
        let mut count = 0usize;
        for data in &segments {
            let block = if let Some(lossy) = reg.get_lossy(id) {
                lossy.compress_to_ratio(data, 0.05).ok()
            } else {
                reg.get(id).compress(data).ok()
            };
            if let Some(b) = block {
                total_ratio += b.ratio();
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        let ratio = total_ratio / count as f64;
        let label = if id.is_lossless() {
            id.name().to_string()
        } else {
            format!("{}*", id.name())
        };
        println!("{:>14} {:>10.4} {:>12.3}", label, ratio, ratio * RAW_MB_S);
        egress.push((label, ratio * RAW_MB_S));
    }

    println!("\nnetwork capacity lines (MB/s):");
    for p in NetworkProfile::ALL {
        let cap = p.mb_per_sec();
        let fitting: Vec<&str> = egress
            .iter()
            .filter(|(_, e)| *e <= cap)
            .map(|(n, _)| n.as_str())
            .collect();
        println!(
            "  {:>5} {:>10.3}  fits: {}",
            p.name(),
            cap,
            if fitting.is_empty() {
                "none".to_string()
            } else {
                fitting.join(", ")
            }
        );
    }
    println!(
        "\nexpected shape (paper): under 4G several lossless arms fit; under \
         3G only lossy arms do — conventional lossless-only selection fails."
    );
}
