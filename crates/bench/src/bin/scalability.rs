//! §V-C scalability claim: AdaEdge sustains ≈8 M points/s of adaptive
//! lossless selection with 8 threads while adhering to constraints.
//!
//! Drives the multithreaded engine (bounded uncompressed buffer, shared
//! MAB selector) with 1–8 compression threads and reports achieved
//! throughput and buffer spills.
//!
//! Run: `cargo run --release -p adaedge-bench --bin scalability`

use adaedge_core::engine::{run_pipeline, EngineConfig};
use adaedge_core::SelectorConfig;
use adaedge_datasets::{CbfConfig, CbfStream, CycleSource};

const SEGMENT: usize = 4096;
const SEGMENTS: usize = 800;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Scalability: adaptive lossless compression pipeline throughput");
    println!("(host has {cores} core(s); worker speedup requires a multi-core host)\n");
    println!(
        "{:>8} {:>16} {:>12} {:>10} {:>10}",
        "threads", "points/s", "egress ratio", "spills", "seconds"
    );
    let mut single = 0.0;
    // Pre-generate the signal pool so the measurement isolates compression
    // (the paper's ingestion thread reads from sensors, not a generator).
    let mut cbf = CbfStream::new(CbfConfig::default(), SEGMENT);
    for threads in [1usize, 2, 4, 8] {
        let mut source = CycleSource::pregenerate(&mut cbf, 64);
        let config = EngineConfig {
            n_compression_threads: threads,
            buffer_segments: 64,
            selector: SelectorConfig {
                epsilon: 0.05,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_pipeline(&mut source, SEGMENTS, &config).expect("pipeline");
        if threads == 1 {
            single = report.points_per_sec;
        }
        println!(
            "{:>8} {:>16.0} {:>12.4} {:>10} {:>10.2}",
            threads,
            report.points_per_sec,
            report.bytes_out as f64 / report.bytes_in as f64,
            report.spills,
            report.elapsed_seconds
        );
    }
    println!(
        "\nadaptive selection converges to lightweight arms (Sprintz-class), \
         so a single worker already clears the paper's 8 M points/s bar \
         (1-thread baseline: {:.0} pts/s) and the ingest stage becomes the \
         bottleneck. To expose worker scaling, the second table pins the \
         selector to the heaviest arm (gzip):\n",
        single
    );

    println!(
        "{:>8} {:>16} {:>10} {:>10}",
        "threads", "points/s", "speedup", "seconds"
    );
    let mut gzip_single = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut source = CycleSource::pregenerate(&mut cbf, 64);
        let config = EngineConfig {
            n_compression_threads: threads,
            buffer_segments: 64,
            lossless_arms: vec![adaedge_codecs::CodecId::Gzip],
            selector: SelectorConfig::default(),
            ..Default::default()
        };
        let report = run_pipeline(&mut source, SEGMENTS / 4, &config).expect("pipeline");
        if threads == 1 {
            gzip_single = report.points_per_sec;
        }
        println!(
            "{:>8} {:>16.0} {:>9.1}x {:>10.2}",
            threads,
            report.points_per_sec,
            report.points_per_sec / gzip_single,
            report.elapsed_seconds
        );
    }
    if cores == 1 {
        println!(
            "\nnote: this host exposes a single core, so the worker pool is \
             core-bound and speedups stay ≈1x by construction; on the paper's \
             dual-Xeon testbed the same pipeline scales with threads."
        );
    }
}
