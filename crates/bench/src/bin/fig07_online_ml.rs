//! Figure 7 (a–d): online-mode ML accuracy *loss* vs target compression
//! ratio for decision tree, random forest, KNN and KMeans.
//!
//! Series: AdaEdge's MAB selection, every fixed lossy arm, the lossless
//! arms (zero loss inside their feasible range, `fail` outside it),
//! CodecDB (static lossless selection — fails beyond lossless reach) and
//! TVStore (PLA everywhere).
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig07_online_ml`

use adaedge_bench::harness::mean;
use adaedge_bench::{
    frozen_model, print_table, ratio_sweep, MethodSeries, ModelKind, INSTANCE_LEN, SEGMENT_LEN,
};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::baselines::{CodecDbBaseline, TvStoreBaseline};
use adaedge_core::{Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget, RewardEvaluator};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge_ml::Model;

const SEGMENTS: usize = 100;
/// Segments excluded from the reported mean (MAB warm-up; applied to every
/// method equally).
const WARMUP: usize = 40;

fn segments_for(seed: u64) -> Vec<Vec<f64>> {
    let mut stream = CbfStream::new(
        CbfConfig {
            seed,
            ..Default::default()
        },
        SEGMENT_LEN,
    );
    (0..SEGMENTS).map(|_| stream.next_segment()).collect()
}

fn accuracy_loss(eval: &RewardEvaluator, orig: &[f64], rec: &[f64]) -> f64 {
    1.0 - eval.ml_accuracy(orig, rec)
}

fn mab_series(model: &Model, segments: &[Vec<f64>], sweep: &[f64]) -> MethodSeries {
    let mut series = MethodSeries::new("mab");
    for &ratio in sweep {
        let constraints = Constraints::online(100_000.0, ratio * 64.0 * 100_000.0, SEGMENT_LEN);
        let mut config = OnlineConfig::new(constraints, OptimizationTarget::ml());
        config.model = Some(model.clone());
        config.instance_len = INSTANCE_LEN;
        let mut edge = match OnlineAdaEdge::new(config) {
            Ok(e) => e,
            Err(_) => {
                series.push(None);
                continue;
            }
        };
        let eval =
            RewardEvaluator::new(OptimizationTarget::ml(), Some(model.clone()), INSTANCE_LEN);
        let mut losses = Vec::new();
        let mut failed = false;
        for seg in segments {
            match edge.process_segment(seg) {
                Ok(out) => {
                    let rec = edge.registry().decompress(&out.selection.block).unwrap();
                    losses.push(accuracy_loss(&eval, seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        series.push((!failed).then(|| mean(&losses[WARMUP.min(losses.len())..])));
    }
    series
}

fn lossy_series(
    reg: &CodecRegistry,
    codec: CodecId,
    model: &Model,
    segments: &[Vec<f64>],
    sweep: &[f64],
) -> MethodSeries {
    let mut series = MethodSeries::new(codec.name());
    let eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model.clone()), INSTANCE_LEN);
    let lossy = reg.get_lossy(codec).unwrap();
    for &ratio in sweep {
        let mut losses = Vec::new();
        let mut failed = false;
        for seg in segments {
            match lossy.compress_to_ratio(seg, ratio) {
                Ok(block) => {
                    let rec = reg.decompress(&block).unwrap();
                    losses.push(accuracy_loss(&eval, seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        series.push((!failed).then(|| mean(&losses[WARMUP.min(losses.len())..])));
    }
    series
}

fn lossless_series(
    reg: &CodecRegistry,
    codec: CodecId,
    segments: &[Vec<f64>],
    sweep: &[f64],
) -> MethodSeries {
    let mut series = MethodSeries::new(codec.name());
    // A lossless arm is feasible at a target ratio iff its achieved ratio
    // fits; within that range its loss is exactly zero.
    let achieved: Vec<f64> = segments
        .iter()
        .map(|s| {
            reg.get(codec)
                .compress(s)
                .map(|b| b.ratio())
                .unwrap_or(f64::INFINITY)
        })
        .collect();
    let worst = achieved.iter().cloned().fold(f64::MIN, f64::max);
    for &ratio in sweep {
        series.push((worst <= ratio).then_some(0.0));
    }
    series
}

fn codecdb_series(reg: &CodecRegistry, segments: &[Vec<f64>], sweep: &[f64]) -> MethodSeries {
    let mut series = MethodSeries::new("codecdb");
    for &ratio in sweep {
        let mut db = CodecDbBaseline::new(CodecRegistry::lossless_candidates(), 1);
        let mut ok = true;
        for (i, seg) in segments.iter().enumerate() {
            // The sampling phase observes candidates without shipping;
            // after committing, every segment must fit the link.
            if db.committed().is_none() && i < segments.len() / 2 {
                let _ = db.compress(reg, seg);
                continue;
            }
            if db.compress_for_ratio(reg, seg, ratio).is_err() {
                ok = false;
                break;
            }
        }
        series.push(ok.then_some(0.0));
    }
    series
}

fn tvstore_series(
    reg: &CodecRegistry,
    model: &Model,
    segments: &[Vec<f64>],
    sweep: &[f64],
) -> MethodSeries {
    let mut series = MethodSeries::new("tvstore-pla");
    let eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model.clone()), INSTANCE_LEN);
    let tv = TvStoreBaseline::new();
    for &ratio in sweep {
        let mut losses = Vec::new();
        let mut failed = false;
        for seg in segments {
            match tv.compress(reg, seg, ratio) {
                Ok(sel) => {
                    let rec = reg.decompress(&sel.block).unwrap();
                    losses.push(accuracy_loss(&eval, seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        series.push((!failed).then(|| mean(&losses[WARMUP.min(losses.len())..])));
    }
    series
}

fn main() {
    let sweep = ratio_sweep();
    let reg = CodecRegistry::new(4);
    let segments = segments_for(0);

    println!("Figure 7: online-mode ML accuracy loss vs target compression ratio");
    println!("(0 = no loss; fail = method cannot operate at that ratio)\n");

    for kind in ModelKind::ALL {
        let model = frozen_model(kind, 17);
        let mut series = vec![mab_series(&model, &segments, &sweep)];
        for codec in CodecRegistry::lossy_candidates() {
            series.push(lossy_series(&reg, codec, &model, &segments, &sweep));
        }
        for codec in [CodecId::Sprintz, CodecId::Buff, CodecId::Gzip] {
            series.push(lossless_series(&reg, codec, &segments, &sweep));
        }
        series.push(codecdb_series(&reg, &segments, &sweep));
        series.push(tvstore_series(&reg, &model, &segments, &sweep));
        print_table(
            &format!("Fig 7 ({}) accuracy loss", kind.name()),
            "ratio",
            &sweep,
            &series,
            4,
        );
    }
    println!(
        "\nexpected shape (paper): lossless arms are zero-loss but fail below \
         their natural ratio; BUFF-lossy is the best lossy arm above ≈0.125 \
         and fails below it; PAA/FFT take over at aggressive ratios; the MAB \
         tracks the per-ratio winner (small exploration bumps); CodecDB fails \
         wherever lossless cannot reach."
    );
}
