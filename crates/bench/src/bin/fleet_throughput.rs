//! Multi-tenant fleet throughput: aggregate segments/s through the
//! fleet layer (admission → per-stream selectors → shared sharded
//! workers → priority frame packing) at 1 / 100 / 1k / 10k concurrent
//! streams, against a same-run single-stream engine baseline.
//!
//! Total work is held constant across stream counts (~20k segments split
//! evenly), so the sweep isolates the *multiplexing overhead*: per-stream
//! selector decisions, the one-batch-in-flight scheduler, stream-table
//! traffic, and egress packing. The scale target is that 10k streams
//! sustain at least 80 % of the single-stream engine's aggregate seg/s.
//!
//! All streams cycle one shared pre-generated segment pool
//! (`SharedCycleSource`) at different phases, so signal generation cost
//! and memory stay flat no matter the stream count; per-stream *resident
//! fleet state* (entry + selector posterior) is reported from the run.
//!
//! Each configuration reports the **median of N timed runs** with the
//! sample standard deviation alongside (the repo-wide bench convention —
//! not best-of-N).
//!
//! Run: `cargo run --release -p adaedge-bench --bin fleet_throughput`
//! (`-- --quick` for the CI smoke configuration: 1k streams, one run).
//! Prints a table and a JSON object suitable for `BENCH_fleet.json`.

use adaedge_core::engine::{run_pipeline, EngineConfig};
use adaedge_core::fleet::{run_fleet, FleetConfig, FleetReport, StreamSpec};
use adaedge_core::frame::Priority;
use adaedge_datasets::{SharedCycleSource, SineStream};
use adaedge_storage::{save_posteriors, StreamPosterior};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEGMENT_LEN: usize = 1000;
const POOL: usize = 64;
const BATCH: usize = 8;

fn fleet_specs(
    pool: &Arc<Vec<Vec<f64>>>,
    streams: usize,
    segs_per_stream: usize,
) -> Vec<StreamSpec> {
    (0..streams as u64)
        .map(|id| {
            StreamSpec::new(
                id,
                Priority::ALL[id as usize % 4],
                segs_per_stream,
                Box::new(SharedCycleSource::new(pool.clone(), id as usize)),
            )
        })
        .collect()
}

fn run_fleet_once(
    pool: &Arc<Vec<Vec<f64>>>,
    streams: usize,
    segs_per_stream: usize,
    posterior_path: Option<PathBuf>,
) -> FleetReport {
    let config = FleetConfig {
        n_compression_threads: 1,
        batch_segments: BATCH,
        // A gateway-sized buffer: deeper shard queues amortize the
        // producer/worker hand-off when tenants contribute only a
        // batch or two each, instead of futex-bouncing every few
        // batches through a device-sized 64-segment buffer.
        buffer_segments: 1024,
        posterior_path,
        ..Default::default()
    };
    run_fleet(fleet_specs(pool, streams, segs_per_stream), &config).expect("fleet")
}

/// Build a warm-start posterior archive: train one stream to steady state
/// over the shared pool, then stamp its converged posterior onto every
/// stream id. Measured runs restore it through the fleet's own
/// evict/restore path, so every tenant starts where a resumed gateway
/// stream would — on the learned arm, not in optimistic-init exploration.
/// Without this, high stream counts measure bandit cold-start (each
/// stream burns its few segments exploring expensive codecs), not the
/// multiplexing machinery the sweep is after.
fn build_warm_archive(pool: &Arc<Vec<Vec<f64>>>, max_streams: usize, path: &Path) {
    let train = run_fleet_once(pool, 1, 512, None);
    let proto = &train.stream_reports[0];
    let posteriors: Vec<StreamPosterior> = (0..max_streams as u64)
        .map(|id| StreamPosterior {
            stream_id: id,
            arms: train.arms.clone(),
            pulls: proto.pulls.clone(),
            estimates: proto.estimates.clone(),
            failure_totals: proto.failure_totals.clone(),
            quarantine_bits: proto.quarantine_bits,
        })
        .collect();
    save_posteriors(path, posteriors.iter()).expect("archive");
}

fn run_engine_once(segments: usize) -> f64 {
    let mut sine = SineStream::new(SEGMENT_LEN, 0.1, 4, 7);
    let mut source =
        SharedCycleSource::new(SharedCycleSource::pregenerate_pool(&mut sine, POOL), 0);
    let config = EngineConfig {
        n_compression_threads: 1,
        batch_segments: BATCH,
        ..Default::default()
    };
    let report = run_pipeline(&mut source, segments, &config).expect("engine");
    report.points_per_sec / SEGMENT_LEN as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

struct Row {
    streams: usize,
    segs_per_stream: usize,
    median_seg_per_sec: f64,
    stddev_seg_per_sec: f64,
    vs_engine: f64,
    per_stream_state_bytes: usize,
    frames: u64,
    max_frame_used: usize,
    stolen_batches: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Equal total work per row; stream counts divide it evenly.
    let total_segments = if quick { 2000 } else { 20_000 };
    let repeats = if quick { 1 } else { 5 };
    let stream_counts: &[usize] = if quick {
        &[1000]
    } else {
        &[1, 100, 1000, 10_000]
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut sine = SineStream::new(SEGMENT_LEN, 0.1, 4, 7);
    let pool = SharedCycleSource::pregenerate_pool(&mut sine, POOL);

    let archive_path = {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "adaedge-fleet-bench-{}.posteriors",
            std::process::id()
        ));
        p
    };
    let max_streams = *stream_counts.iter().max().expect("non-empty");
    build_warm_archive(&pool, max_streams, &archive_path);
    let pristine_archive = std::fs::read(&archive_path).expect("archive bytes");

    // Same-run single-stream engine baseline: the denominator of the
    // "within 20 % of the engine" scale target, measured on this host
    // today, same codec roster, same K, same segment pool.
    run_engine_once(total_segments / 4);
    let mut engine_samples: Vec<f64> = (0..repeats)
        .map(|_| run_engine_once(total_segments))
        .collect();
    let engine_sd = stddev(&engine_samples);
    let engine_med = median(&mut engine_samples);

    println!(
        "Fleet throughput: {total_segments} segments x {SEGMENT_LEN} points total, K={BATCH}, median of {repeats} (+/- sample stddev), host cores: {host_parallelism}"
    );
    println!("Single-stream engine baseline: {engine_med:.0} seg/s (stddev {engine_sd:.0})");
    println!(
        "{:>8} {:>10} {:>14} {:>10} {:>10} {:>12} {:>8} {:>10} {:>8}",
        "streams",
        "segs/strm",
        "segments/s",
        "stddev",
        "vs engine",
        "state B/strm",
        "frames",
        "max frame",
        "stolen"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &streams in stream_counts {
        let segs_per_stream = (total_segments / streams).max(1);
        run_fleet_once(
            &pool,
            streams,
            segs_per_stream.div_ceil(4).max(1),
            Some(archive_path.clone()),
        );
        let mut samples = Vec::with_capacity(repeats);
        let mut last: Option<FleetReport> = None;
        for _ in 0..repeats {
            // Restore the pristine converged archive before every run so
            // repeats measure identical posterior state.
            std::fs::write(&archive_path, &pristine_archive).expect("archive reset");
            let report =
                run_fleet_once(&pool, streams, segs_per_stream, Some(archive_path.clone()));
            assert_eq!(report.restores, streams as u64, "every stream warm-starts");
            samples.push(report.segments_per_sec);
            last = Some(report);
        }
        let report = last.expect("at least one run");
        assert!(
            report.frames.max_frame_used <= report.frames.payload_cap,
            "frame cap violated"
        );
        let sd = stddev(&samples);
        let med = median(&mut samples);
        let vs = med / engine_med;
        println!(
            "{streams:>8} {segs_per_stream:>10} {med:>14.0} {sd:>10.0} {vs:>10.2} {:>12} {:>8} {:>10} {:>8}",
            report.per_stream_state_bytes,
            report.frames.frames,
            report.frames.max_frame_used,
            report.stolen_batches,
        );
        rows.push(Row {
            streams,
            segs_per_stream,
            median_seg_per_sec: med,
            stddev_seg_per_sec: sd,
            vs_engine: vs,
            per_stream_state_bytes: report.per_stream_state_bytes,
            frames: report.frames.frames,
            max_frame_used: report.frames.max_frame_used,
            stolen_batches: report.stolen_batches,
        });
    }

    println!("\nJSON:");
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"segment_len\": {SEGMENT_LEN},\n  \"total_segments\": {total_segments},\n  \"batch_segments\": {BATCH},\n  \"repeats\": {repeats},\n  \"statistic\": \"median\",\n  \"host_parallelism\": {host_parallelism},\n"
    ));
    json.push_str(&format!(
        "  \"engine_baseline_seg_per_sec\": {engine_med:.0},\n  \"engine_baseline_stddev\": {engine_sd:.0},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"streams\": {}, \"segments_per_stream\": {}, \"segments_per_sec\": {:.0}, \"stddev\": {:.0}, \"vs_engine\": {:.3}, \"per_stream_state_bytes\": {}, \"frames\": {}, \"max_frame_used\": {}, \"stolen_batches\": {} }}{}\n",
            row.streams,
            row.segs_per_stream,
            row.median_seg_per_sec,
            row.stddev_seg_per_sec,
            row.vs_engine,
            row.per_stream_state_bytes,
            row.frames,
            row.max_frame_used,
            row.stolen_batches,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"notes\": [\n    \
         \"Total work is constant across rows (~total_segments split evenly), so rows isolate multiplexing overhead: per-stream selector decisions, one-batch-in-flight scheduling, stream-table traffic, frame packing. vs_engine is the row's median over the same-run single-stream engine baseline; the scale target is >= 0.80 at 10k streams.\",\n    \
         \"All streams cycle one shared pre-generated segment pool at distinct phases (SharedCycleSource), so generation cost and pool memory are flat in the stream count; per_stream_state_bytes is the fleet's own resident cost per admitted stream (entry + selector posterior).\",\n    \
         \"Every stream warm-starts from a converged posterior through the fleet's evict/restore path (restores == streams is asserted), modelling a gateway whose tenants resume learned state. Without warm-start, rows with few segments per stream measure bandit cold-start - thousands of fresh selectors burning their only segments exploring expensive codecs - which is inherent to the bandit, not to the multiplexing machinery. The engine baseline self-converges within ~50 of its segments, which is negligible at this scale.\",\n    \
         \"At high stream counts segments_per_stream falls below K, so the effective batch shrinks and the fleet pays more selector decisions per segment than the engine row - that, plus frame packing, is the overhead being measured.\",\n    \
         \"Each figure is the median of N timed runs after one untimed warm-up; the sample standard deviation (n-1) is reported alongside.\"\n  ]\n",
    );
    json.push('}');
    println!("{json}");
    std::fs::remove_file(&archive_path).ok();
}
