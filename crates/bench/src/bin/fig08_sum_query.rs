//! Figure 8: SUM-query accuracy loss over the target compression ratio
//! (log-scale in the paper).
//!
//! PAA and FFT preserve sums almost exactly (window means / the f64 DC
//! coefficient); the MAB should match them. Lossless arms have exactly
//! zero loss inside their feasible range (the paper draws them <1e-18).
//!
//! Run: `cargo run --release -p adaedge-bench --bin fig08_sum_query`

use adaedge_bench::agg_figure::run_agg_figure;
use adaedge_core::AggKind;

fn main() {
    println!("Figure 8: SUM-query accuracy loss vs target compression ratio");
    println!("(paper plots log-scale; lossless arms sit below 1e-18 = printed 0)");
    run_agg_figure(AggKind::Sum, "Fig 8 SUM accuracy loss");
    println!(
        "\nexpected shape (paper): PAA/FFT near machine precision; the MAB \
         matches them; BUFF-lossy small-but-nonzero; RRD/PLA clearly worse."
    );
}
