//! Diagnostic: per-codec damage distribution inside the offline store
//! after a Figure-12-style run. Not part of the figure set.

use adaedge_bench::{frozen_model, ModelKind, INSTANCE_LEN, SEGMENT_LEN};
use adaedge_core::{OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge_ml::metrics;
use std::collections::HashMap;

fn main() {
    let model = frozen_model(ModelKind::KMeans, 17);
    let mut config = OfflineConfig::new(1_400_000, OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE_LEN;
    let mut edge = OfflineAdaEdge::new(config).unwrap();
    let mut src = CbfStream::new(CbfConfig::default(), SEGMENT_LEN);
    for _ in 0..1000 {
        edge.ingest(&src.next_segment()).unwrap();
    }
    // Per codec: count, mean ratio, total loss contribution.
    let mut stats: HashMap<&'static str, (usize, f64, f64)> = HashMap::new();
    for (id, rec, orig) in edge.reconstruct_all().unwrap() {
        let orig = orig.unwrap();
        let seg = edge.store().peek(id).unwrap();
        let codec = seg.block().unwrap().codec.name();
        let orows: Vec<Vec<f64>> = orig
            .chunks_exact(INSTANCE_LEN)
            .map(|c| c.to_vec())
            .collect();
        let lrows: Vec<Vec<f64>> = rec.chunks_exact(INSTANCE_LEN).map(|c| c.to_vec()).collect();
        let loss = 1.0 - metrics::ml_accuracy(&model, &orows, &lrows);
        let e = stats.entry(codec).or_insert((0, 0.0, 0.0));
        e.0 += 1;
        e.1 += seg.ratio();
        e.2 += loss;
    }
    println!(
        "{:>12} {:>7} {:>10} {:>12} {:>12}",
        "codec", "count", "mean r", "mean loss", "loss share"
    );
    let total_loss: f64 = stats.values().map(|v| v.2).sum();
    let mut rows: Vec<_> = stats.into_iter().collect();
    rows.sort_by(|a, b| b.1 .2.partial_cmp(&a.1 .2).unwrap());
    for (codec, (count, ratio_sum, loss_sum)) in rows {
        println!(
            "{:>12} {:>7} {:>10.4} {:>12.4} {:>11.1}%",
            codec,
            count,
            ratio_sum / count as f64,
            loss_sum / count as f64,
            100.0 * loss_sum / total_loss.max(1e-12)
        );
    }
}
