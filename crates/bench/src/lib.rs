//! # adaedge-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! AdaEdge paper's evaluation (§V). Each `fig*` binary prints the rows /
//! series of the corresponding figure; `benches/codecs.rs` holds the
//! Criterion microbenchmarks behind the throughput numbers.
//!
//! Shared here: experiment setup (frozen models, streams, sweeps), table
//! printing, and JSON result emission so EXPERIMENTS.md can be
//! regenerated mechanically.

#![warn(missing_docs)]

pub mod agg_figure;
pub mod harness;
pub mod setup;

pub use harness::{print_table, ratio_sweep, MethodSeries};
pub use setup::{frozen_model, offline_fixed_pairs, ModelKind, INSTANCE_LEN, SEGMENT_LEN};
