//! Shared harness for the aggregation-query figures (Figures 8 and 9).

use crate::harness::mean;
use crate::{print_table, ratio_sweep, MethodSeries, SEGMENT_LEN};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_core::baselines::TvStoreBaseline;
use adaedge_core::{
    AggKind, Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget, RewardEvaluator,
};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};

const SEGMENTS: usize = 100;
const WARMUP: usize = 40;

fn segments_for(seed: u64) -> Vec<Vec<f64>> {
    let mut stream = CbfStream::new(
        CbfConfig {
            seed,
            ..Default::default()
        },
        SEGMENT_LEN,
    );
    (0..SEGMENTS).map(|_| stream.next_segment()).collect()
}

/// Run one figure (SUM or MAX) and print its table.
pub fn run_agg_figure(kind: AggKind, title: &str) {
    let sweep = ratio_sweep();
    let reg = CodecRegistry::new(4);
    let segments = segments_for(3);
    let eval = RewardEvaluator::new(OptimizationTarget::agg(kind), None, 0);
    let loss = |orig: &[f64], rec: &[f64]| 1.0 - eval.agg_accuracy(kind, orig, rec);

    let mut series = Vec::new();

    // MAB (full online pipeline).
    let mut mab = MethodSeries::new("mab");
    for &ratio in &sweep {
        let constraints = Constraints::online(100_000.0, ratio * 64.0 * 100_000.0, SEGMENT_LEN);
        let config = OnlineConfig::new(constraints, OptimizationTarget::agg(kind));
        let mut edge = OnlineAdaEdge::new(config).expect("valid config");
        let mut losses = Vec::new();
        let mut failed = false;
        for seg in &segments {
            match edge.process_segment(seg) {
                Ok(out) => {
                    let rec = edge.registry().decompress(&out.selection.block).unwrap();
                    losses.push(loss(seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        mab.push((!failed).then(|| mean(&losses[WARMUP.min(losses.len())..])));
    }
    series.push(mab);

    // Fixed lossy arms.
    for codec in CodecRegistry::lossy_candidates() {
        let lossy = reg.get_lossy(codec).unwrap();
        let mut s = MethodSeries::new(codec.name());
        for &ratio in &sweep {
            let mut losses = Vec::new();
            let mut failed = false;
            for seg in &segments {
                match lossy.compress_to_ratio(seg, ratio) {
                    Ok(block) => {
                        let rec = reg.decompress(&block).unwrap();
                        losses.push(loss(seg, &rec));
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            s.push((!failed).then(|| mean(&losses)));
        }
        series.push(s);
    }

    // Lossless arms: zero loss while feasible.
    for codec in [CodecId::Sprintz, CodecId::Buff] {
        let worst = segments
            .iter()
            .map(|seg| {
                reg.get(codec)
                    .compress(seg)
                    .map(|b| b.ratio())
                    .unwrap_or(f64::INFINITY)
            })
            .fold(f64::MIN, f64::max);
        let mut s = MethodSeries::new(codec.name());
        for &ratio in &sweep {
            s.push((worst <= ratio).then_some(0.0));
        }
        series.push(s);
    }

    // TVStore (PLA).
    let tv = TvStoreBaseline::new();
    let mut s = MethodSeries::new("tvstore-pla");
    for &ratio in &sweep {
        let mut losses = Vec::new();
        let mut failed = false;
        for seg in &segments {
            match tv.compress(&reg, seg, ratio) {
                Ok(sel) => {
                    let rec = reg.decompress(&sel.block).unwrap();
                    losses.push(loss(seg, &rec));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        s.push((!failed).then(|| mean(&losses)));
    }
    series.push(s);

    print_table(title, "ratio", &sweep, &series, 4);
}
