//! Table printing and sweep utilities shared by the fig* binaries.

/// The target-compression-ratio sweep used on the x-axis of Figures 7–11
/// (1.0 → 0.05, the paper's plotted range).
pub fn ratio_sweep() -> Vec<f64> {
    vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.05]
}

/// One method's values across a sweep; `None` marks "method fails here"
/// (infeasible ratio, budget breach, ...), rendered as `fail`.
#[derive(Debug, Clone)]
pub struct MethodSeries {
    /// Legend label.
    pub name: String,
    /// One value per sweep point.
    pub values: Vec<Option<f64>>,
}

impl MethodSeries {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Append a data point.
    pub fn push(&mut self, v: Option<f64>) {
        self.values.push(v);
    }
}

fn fmt_value(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) if x.abs() < 1e-3 && x != 0.0 => format!("{x:.2e}"),
        Some(x) => format!("{x:.precision$}"),
        None => "fail".to_string(),
    }
}

/// Print a figure as an ASCII table: rows are sweep points, columns are
/// methods. `x_label` heads the first column.
pub fn print_table(
    title: &str,
    x_label: &str,
    xs: &[f64],
    series: &[MethodSeries],
    precision: usize,
) {
    println!("\n=== {title} ===");
    let mut header = format!("{x_label:>10}");
    for s in series {
        header.push_str(&format!(" {:>14}", truncate(&s.name, 14)));
    }
    println!("{header}");
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("{x:>10.3}");
        for s in series {
            let v = s.values.get(i).copied().flatten();
            row.push_str(&format!(" {:>14}", fmt_value(v, precision)));
        }
        println!("{row}");
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}

/// Mean of a slice (0.0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_descending_in_range() {
        let sweep = ratio_sweep();
        assert!(sweep.windows(2).all(|w| w[0] > w[1]));
        assert!(*sweep.first().unwrap() <= 1.0);
        assert!(*sweep.last().unwrap() >= 0.01);
    }

    #[test]
    fn series_building() {
        let mut s = MethodSeries::new("mab");
        s.push(Some(0.5));
        s.push(None);
        assert_eq!(s.values, vec![Some(0.5), None]);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(None, 3), "fail");
        assert_eq!(fmt_value(Some(0.25), 3), "0.250");
        assert!(fmt_value(Some(1.5e-9), 3).contains('e'));
    }

    #[test]
    fn mean_math() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
