//! Shared experiment setup: frozen models and the baseline pair sets.

use adaedge_codecs::CodecId;
use adaedge_core::baselines::FixedPair;
use adaedge_datasets::{CbfConfig, CbfGenerator};
use adaedge_ml::{Dataset, ForestConfig, KMeansConfig, Model, TreeConfig};

/// Points per streamed segment (8 CBF instances).
pub const SEGMENT_LEN: usize = 1024;
/// Points per dataset instance (classic CBF length).
pub const INSTANCE_LEN: usize = 128;

/// Which frozen model an experiment evaluates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// CART decision tree.
    DTree,
    /// Random forest.
    RForest,
    /// K-nearest neighbours.
    Knn,
    /// K-means clustering.
    KMeans,
}

impl ModelKind {
    /// Display name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::DTree => "dtree",
            ModelKind::RForest => "rforest",
            ModelKind::Knn => "knn",
            ModelKind::KMeans => "kmeans",
        }
    }

    /// The four models of Figure 7.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::DTree,
        ModelKind::RForest,
        ModelKind::Knn,
        ModelKind::KMeans,
    ];
}

/// Train the §IV-D frozen model on raw CBF data (centralized training on
/// the raw format; predictions on raw data are ground truth).
pub fn frozen_model(kind: ModelKind, seed: u64) -> Model {
    let mut gen = CbfGenerator::new(CbfConfig {
        seed,
        ..Default::default()
    });
    let (rows, labels) = gen.dataset(40);
    match kind {
        ModelKind::DTree => Model::train_dtree(
            &Dataset::new(rows, labels),
            TreeConfig {
                max_depth: 10,
                ..Default::default()
            },
        ),
        ModelKind::RForest => Model::train_rforest(
            &Dataset::new(rows, labels),
            ForestConfig {
                n_trees: 15,
                ..Default::default()
            },
        ),
        ModelKind::Knn => Model::train_knn(&Dataset::new(rows, labels), 3),
        ModelKind::KMeans => Model::train_kmeans(
            &Dataset::unlabeled(rows),
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        ),
    }
}

/// The `lossless_lossy` fixed pairs highlighted in Figures 12–14.
pub fn offline_fixed_pairs() -> Vec<FixedPair> {
    vec![
        FixedPair::new(CodecId::Gzip, CodecId::BuffLossy),
        FixedPair::new(CodecId::Snappy, CodecId::BuffLossy),
        FixedPair::new(CodecId::Gorilla, CodecId::BuffLossy),
        FixedPair::new(CodecId::Sprintz, CodecId::BuffLossy),
        FixedPair::new(CodecId::Buff, CodecId::BuffLossy),
        FixedPair::new(CodecId::Sprintz, CodecId::Paa),
        FixedPair::new(CodecId::Sprintz, CodecId::Pla),
        FixedPair::new(CodecId::Sprintz, CodecId::Fft),
        FixedPair::new(CodecId::Sprintz, CodecId::RrdSample),
        FixedPair::new(CodecId::Gorilla, CodecId::Fft),
        FixedPair::new(CodecId::Gorilla, CodecId::Pla),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_train_and_predict() {
        for kind in ModelKind::ALL {
            let model = frozen_model(kind, 5);
            assert_eq!(model.dim(), INSTANCE_LEN);
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn pairs_cover_the_figures() {
        let pairs = offline_fixed_pairs();
        let names: Vec<String> = pairs.iter().map(|p| p.name()).collect();
        assert!(names.contains(&"gzip_bufflossy".to_string()));
        assert!(names.contains(&"gorilla_fft".to_string()));
        assert!(names.contains(&"gorilla_pla".to_string()));
    }
}
