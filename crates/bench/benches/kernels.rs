//! Hot-loop kernel micro-benchmarks, one row per backend tier: every
//! kernel is timed through `adaedge_codecs::simd::Backend` for each tier
//! the host supports (scalar reference, portable SWAR, and whichever of
//! SSE4.2/AVX2/NEON detection finds), in the same binary and the same
//! run, so per-tier rows divide directly into speedups. Buffer sizes are
//! what the engine actually moves (segment payloads of a few KB).
//! `pack_run`/`unpack_run` are benched at widths 7 and 12 — inside the
//! AVX2 fast-path range and typical of Sprintz delta lanes; `quantize`
//! has no SIMD tier and keeps its single fused row.

use adaedge_codecs::simd;
use adaedge_codecs::util::quantize_into;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

/// Segment-sized payload: 1000 points × 8 bytes, like the engine streams.
const N_BYTES: usize = 8000;
const N_POINTS: usize = 1000;

fn pseudo_bytes(n: usize) -> Vec<u8> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 56) as u8
        })
        .collect()
}

fn smooth_points(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.01).sin() * 3.0 * 1e4).round() / 1e4)
        .collect()
}

fn quantized(n: usize) -> Vec<i64> {
    let mut q = Vec::new();
    quantize_into(&smooth_points(n), 4, &mut q).unwrap();
    q
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    group
}

fn bench_crc32c(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes(N_BYTES as u64));
    let data = pseudo_bytes(N_BYTES);
    for &backend in simd::supported() {
        group.bench_with_input(
            BenchmarkId::new("crc32c", backend.name()),
            &data,
            |b, data| b.iter(|| black_box(backend.crc32c_append(0, data))),
        );
    }
    group.finish();
}

fn bench_match_extend(c: &mut Criterion) {
    let mut group = quick(c);
    // A long planted match so the kernels measure extension, not the
    // first-mismatch exit: the second half repeats the first half.
    let mut data = pseudo_bytes(N_BYTES / 2);
    data.extend_from_within(..);
    let max = N_BYTES / 2;
    group.throughput(Throughput::Bytes(max as u64));
    for &backend in simd::supported() {
        group.bench_with_input(
            BenchmarkId::new("match_extend", backend.name()),
            &data,
            |b, data| b.iter(|| black_box(backend.match_len(data, 0, N_BYTES / 2, max))),
        );
    }
    group.finish();
}

fn bench_pack_unpack(c: &mut Criterion) {
    let mut group = quick(c);
    // Throughput over the unpacked side: N_POINTS u64 fields per call.
    group.throughput(Throughput::Bytes((N_POINTS * 8) as u64));
    for width in [7u32, 12] {
        let mask = (1u64 << width) - 1;
        let values: Vec<u64> = (0..N_POINTS as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
            .collect();
        let packed = {
            let mut buf = Vec::new();
            let (acc, nacc) = simd::Backend::Swar.pack_run(&mut buf, 0, 0, &values, width);
            buf.extend_from_slice(&acc.to_be_bytes()[..(nacc as usize).div_ceil(8)]);
            buf
        };
        for &backend in simd::supported() {
            group.bench_with_input(
                BenchmarkId::new(format!("pack_run_w{width}"), backend.name()),
                &values,
                |b, values| {
                    let mut buf = Vec::with_capacity(N_POINTS * 2);
                    b.iter(|| {
                        buf.clear();
                        black_box(backend.pack_run(&mut buf, 0, 0, values, width))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("unpack_run_w{width}"), backend.name()),
                &packed,
                |b, packed| {
                    let mut out = vec![0u64; N_POINTS];
                    b.iter(|| black_box(backend.unpack_run(packed, 0, &mut out, width)))
                },
            );
        }
    }
    group.finish();
}

fn bench_transforms(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N_POINTS * 8) as u64));
    let q = quantized(N_POINTS);
    let zs = {
        let mut zs = vec![0u64; q.len() - 1];
        simd::Backend::Swar.delta_zigzag(&q, &mut zs);
        zs
    };
    for &backend in simd::supported() {
        group.bench_with_input(
            BenchmarkId::new("delta_zigzag", backend.name()),
            &q,
            |b, q| {
                let mut out = vec![0u64; q.len() - 1];
                b.iter(|| {
                    backend.delta_zigzag(q, &mut out);
                    black_box(out.last().copied())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unzigzag_undelta", backend.name()),
            &zs,
            |b, zs| {
                let mut out = vec![0i64; zs.len()];
                b.iter(|| black_box(backend.unzigzag_undelta(q[0], zs, &mut out)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dequantize", backend.name()),
            &q,
            |b, q| {
                let mut out = vec![0.0f64; q.len()];
                b.iter(|| {
                    backend.dequantize(q, 1e4, &mut out);
                    black_box(out.last().copied())
                })
            },
        );
    }
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N_POINTS * 8) as u64));
    let data = smooth_points(N_POINTS);
    group.bench_with_input(BenchmarkId::new("quantize", "fused"), &data, |b, data| {
        let mut out = Vec::with_capacity(N_POINTS);
        b.iter(|| {
            quantize_into(data, 4, &mut out).unwrap();
            black_box(out.last().copied())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc32c,
    bench_match_extend,
    bench_pack_unpack,
    bench_transforms,
    bench_quantize
);
criterion_main!(benches);
