//! Hot-loop kernel micro-benchmarks: the SWAR/fused kernels against their
//! naive scalar references, on the buffer sizes the engine actually moves
//! (segment payloads of a few KB). `crc32c` compares slicing-by-8 against
//! the table-per-byte loop, `match_extend` compares word-at-a-time match
//! extension against byte comparison, and `quantize` / `dequantize` /
//! `delta_zigzag` time the fused transform loops. Throughput is over the
//! input side so before/after figures divide directly into speedups.

use adaedge_codecs::crc32c::{crc32c, crc32c_scalar};
use adaedge_codecs::lz::{match_len, match_len_scalar};
use adaedge_codecs::util::{delta_zigzag_into, dequantize_into, quantize_into};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

/// Segment-sized payload: 1000 points × 8 bytes, like the engine streams.
const N_BYTES: usize = 8000;
const N_POINTS: usize = 1000;

fn pseudo_bytes(n: usize) -> Vec<u8> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 56) as u8
        })
        .collect()
}

fn smooth_points(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.01).sin() * 3.0 * 1e4).round() / 1e4)
        .collect()
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    group
}

fn bench_crc32c(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes(N_BYTES as u64));
    let data = pseudo_bytes(N_BYTES);
    group.bench_with_input(BenchmarkId::new("crc32c", "sliced8"), &data, |b, data| {
        b.iter(|| black_box(crc32c(data)))
    });
    group.bench_with_input(BenchmarkId::new("crc32c", "scalar"), &data, |b, data| {
        b.iter(|| black_box(crc32c_scalar(data)))
    });
    group.finish();
}

fn bench_match_extend(c: &mut Criterion) {
    let mut group = quick(c);
    // A long planted match so the kernels measure extension, not the
    // first-mismatch exit: the second half repeats the first half.
    let mut data = pseudo_bytes(N_BYTES / 2);
    data.extend_from_within(..);
    let max = N_BYTES / 2;
    group.throughput(Throughput::Bytes(max as u64));
    group.bench_with_input(
        BenchmarkId::new("match_extend", "swar"),
        &data,
        |b, data| b.iter(|| black_box(match_len(data, 0, N_BYTES / 2, max))),
    );
    group.bench_with_input(
        BenchmarkId::new("match_extend", "scalar"),
        &data,
        |b, data| b.iter(|| black_box(match_len_scalar(data, 0, N_BYTES / 2, max))),
    );
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N_POINTS * 8) as u64));
    let data = smooth_points(N_POINTS);
    group.bench_with_input(BenchmarkId::new("quantize", "fused"), &data, |b, data| {
        let mut out = Vec::with_capacity(N_POINTS);
        b.iter(|| {
            quantize_into(data, 4, &mut out).unwrap();
            black_box(out.last().copied())
        })
    });
    let q = {
        let mut q = Vec::new();
        quantize_into(&data, 4, &mut q).unwrap();
        q
    };
    group.bench_with_input(BenchmarkId::new("dequantize", "fused"), &q, |b, q| {
        let mut out = Vec::with_capacity(N_POINTS);
        b.iter(|| {
            dequantize_into(q, 4, &mut out).unwrap();
            black_box(out.last().copied())
        })
    });
    group.finish();
}

fn bench_delta_zigzag(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N_POINTS * 8) as u64));
    let data = smooth_points(N_POINTS);
    let q = {
        let mut q = Vec::new();
        quantize_into(&data, 4, &mut q).unwrap();
        q
    };
    group.bench_with_input(BenchmarkId::new("delta_zigzag", "fused"), &q, |b, q| {
        let mut out = Vec::with_capacity(N_POINTS);
        b.iter(|| {
            delta_zigzag_into(q, &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc32c,
    bench_match_extend,
    bench_quantize,
    bench_delta_zigzag
);
criterion_main!(benches);
