//! Bit I/O micro-benchmarks: fixed-width pack/unpack throughput at the
//! widths that dominate codec inner loops (Sprintz delta lanes, BUFF
//! subcolumns, dictionary codes). `*_scalar` drives the per-value
//! `write_bits` / `read_bits` path; `*_run` drives the bulk
//! `write_run` / `read_run` kernels. Throughput is reported over the
//! unpacked side (8 bytes per value), so a GB/s figure means "u64 lanes
//! processed per second" at every width.

use adaedge_codecs::bitio::{BitReader, BitWriter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 16 * 1024;
const WIDTHS: [u32; 8] = [1, 4, 7, 8, 12, 16, 32, 64];

fn values(width: u32) -> Vec<u64> {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..N)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state & mask
        })
        .collect()
}

fn packed(width: u32) -> Vec<u8> {
    let vals = values(width);
    let mut w = BitWriter::with_capacity(N * width as usize / 8 + 8);
    for &v in &vals {
        w.write_bits(v, width);
    }
    w.finish()
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("bitio");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    group
}

fn bench_pack_scalar(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N * 8) as u64));
    for width in WIDTHS {
        let vals = values(width);
        group.bench_with_input(
            BenchmarkId::new("pack_scalar", format!("w{width}")),
            &vals,
            |b, vals| {
                b.iter(|| {
                    let mut w = BitWriter::with_capacity(N * width as usize / 8 + 8);
                    for &v in vals {
                        w.write_bits(v, width);
                    }
                    black_box(w.finish())
                })
            },
        );
    }
    group.finish();
}

fn bench_unpack_scalar(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N * 8) as u64));
    for width in WIDTHS {
        let bytes = packed(width);
        group.bench_with_input(
            BenchmarkId::new("unpack_scalar", format!("w{width}")),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let mut r = BitReader::new(bytes);
                    let mut acc = 0u64;
                    for _ in 0..N {
                        acc = acc.wrapping_add(r.read_bits(width).unwrap());
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_pack_run(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N * 8) as u64));
    for width in WIDTHS {
        let vals = values(width);
        group.bench_with_input(
            BenchmarkId::new("pack_run", format!("w{width}")),
            &vals,
            |b, vals| {
                b.iter(|| {
                    let mut w = BitWriter::with_capacity(N * width as usize / 8 + 8);
                    w.write_run(vals, width);
                    black_box(w.finish())
                })
            },
        );
    }
    group.finish();
}

fn bench_unpack_run(c: &mut Criterion) {
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((N * 8) as u64));
    for width in WIDTHS {
        let bytes = packed(width);
        group.bench_with_input(
            BenchmarkId::new("unpack_run", format!("w{width}")),
            &bytes,
            |b, bytes| {
                let mut out = vec![0u64; N];
                b.iter(|| {
                    let mut r = BitReader::new(bytes);
                    r.read_run(&mut out, width).unwrap();
                    black_box(out.last().copied())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pack_scalar,
    bench_unpack_scalar,
    bench_pack_run,
    bench_unpack_run
);
criterion_main!(benches);
