//! Criterion microbenchmarks: per-codec compression / decompression
//! throughput (the measurements behind Figures 2–3), MAB selection
//! overhead, and the virtual-decompression recoding ablation (§IV-E).

use adaedge_bandit::{EpsilonGreedy, Policy};
use adaedge_codecs::{CodecId, CodecRegistry};
use adaedge_datasets::{CbfConfig, CbfStream, SegmentSource};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const SEGMENT: usize = 1024;

fn segment() -> Vec<f64> {
    let mut s = CbfStream::new(CbfConfig::default(), SEGMENT);
    s.next_segment()
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("codecs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group
}

fn bench_lossless_compress(c: &mut Criterion) {
    let reg = CodecRegistry::new(4);
    let data = segment();
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((SEGMENT * 8) as u64));
    for id in CodecRegistry::extended_lossless_candidates() {
        group.bench_with_input(BenchmarkId::new("compress", id.name()), &data, |b, d| {
            b.iter(|| black_box(reg.get(id).compress(black_box(d)).unwrap()))
        });
    }
    group.finish();
}

fn bench_lossless_decompress(c: &mut Criterion) {
    let reg = CodecRegistry::new(4);
    let data = segment();
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((SEGMENT * 8) as u64));
    for id in CodecRegistry::extended_lossless_candidates() {
        let block = reg.get(id).compress(&data).unwrap();
        group.bench_with_input(
            BenchmarkId::new("decompress", id.name()),
            &block,
            |b, blk| b.iter(|| black_box(reg.decompress(black_box(blk)).unwrap())),
        );
    }
    group.finish();
}

fn bench_lossy_compress(c: &mut Criterion) {
    let reg = CodecRegistry::new(4);
    let data = segment();
    let mut group = quick(c);
    group.throughput(Throughput::Bytes((SEGMENT * 8) as u64));
    for id in CodecRegistry::lossy_candidates() {
        let lossy = reg.get_lossy(id).unwrap();
        group.bench_with_input(
            BenchmarkId::new("compress_r0.2", id.name()),
            &data,
            |b, d| b.iter(|| black_box(lossy.compress_to_ratio(black_box(d), 0.2).unwrap())),
        );
    }
    group.finish();
}

fn bench_recode_virtual_vs_full(c: &mut Criterion) {
    // The §IV-E ablation: recoding PAA→PAA via virtual decompression vs a
    // full decompress + re-compress round trip.
    let reg = CodecRegistry::new(4);
    let data = segment();
    let paa = reg.get_lossy(CodecId::Paa).unwrap();
    let block = paa.compress_to_ratio(&data, 0.4).unwrap();
    let mut group = quick(c);
    group.bench_function("recode/paa_virtual", |b| {
        b.iter(|| black_box(paa.recode(black_box(&block), 0.1).unwrap()))
    });
    group.bench_function("recode/paa_full_roundtrip", |b| {
        b.iter(|| {
            let decoded = reg.decompress(black_box(&block)).unwrap();
            black_box(paa.compress_to_ratio(&decoded, 0.1).unwrap())
        })
    });
    let buff = reg.get_lossy(CodecId::BuffLossy).unwrap();
    let bblock = buff.compress_to_ratio(&data, 0.4).unwrap();
    group.bench_function("recode/buff_virtual", |b| {
        b.iter(|| black_box(buff.recode(black_box(&bblock), 0.2).unwrap()))
    });
    group.bench_function("recode/buff_full_roundtrip", |b| {
        b.iter(|| {
            let decoded = reg.decompress(black_box(&bblock)).unwrap();
            black_box(buff.compress_to_ratio(&decoded, 0.2).unwrap())
        })
    });
    group.finish();
}

fn bench_mab_overhead(c: &mut Criterion) {
    // The selection step must be negligible next to compression (§III-C:
    // O(K) time and space).
    let mut mab = EpsilonGreedy::optimistic(10, 0.1, 1.0);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut group = quick(c);
    group.bench_function("mab/select_update", |b| {
        b.iter(|| {
            let arm = mab.select(None, &mut rng);
            mab.update(arm, 0.5);
            black_box(arm)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lossless_compress,
    bench_lossless_decompress,
    bench_lossy_compress,
    bench_recode_virtual_vs_full,
    bench_mab_overhead
);
criterion_main!(benches);
