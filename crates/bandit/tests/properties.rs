//! Property-based tests for the bandit policies.

use adaedge_bandit::{BandedBandits, EpsilonGreedy, GradientBandit, Policy, StepSize, Ucb};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn policies(n_arms: usize) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(EpsilonGreedy::new(n_arms, 0.2)),
        Box::new(EpsilonGreedy::optimistic(n_arms, 0.0, 5.0)),
        Box::new(EpsilonGreedy::with_options(
            n_arms,
            0.1,
            0.0,
            StepSize::Constant(0.5),
        )),
        Box::new(Ucb::new(n_arms, 1.4)),
        Box::new(GradientBandit::new(n_arms, 0.2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn selection_always_respects_mask(
        n_arms in 2usize..8,
        mask_bits in prop::collection::vec(any::<bool>(), 2..8),
        seed in any::<u64>(),
        rewards in prop::collection::vec(0.0f64..1.0, 1..50),
    ) {
        let mut mask: Vec<bool> = (0..n_arms)
            .map(|i| mask_bits.get(i).copied().unwrap_or(false))
            .collect();
        if mask.iter().all(|&m| !m) {
            mask[0] = true; // at least one arm must be enabled
        }
        for mut policy in policies(n_arms) {
            let mut rng = SmallRng::seed_from_u64(seed);
            for &r in &rewards {
                let arm = policy.select(Some(&mask), &mut rng);
                prop_assert!(mask[arm], "selected masked arm {arm}");
                policy.update(arm, r);
            }
        }
    }

    #[test]
    fn pull_counts_sum_to_total(
        seed in any::<u64>(),
        steps in 1usize..200,
    ) {
        for mut policy in policies(4) {
            let mut rng = SmallRng::seed_from_u64(seed);
            for t in 0..steps {
                let arm = policy.select(None, &mut rng);
                policy.update(arm, (t % 3) as f64 / 3.0);
            }
            prop_assert_eq!(policy.pulls().iter().sum::<u64>(), steps as u64);
            prop_assert_eq!(policy.total_pulls(), steps as u64);
        }
    }

    #[test]
    fn sample_average_estimate_is_the_mean(
        rewards in prop::collection::vec(-5.0f64..5.0, 1..100),
    ) {
        let mut p = EpsilonGreedy::new(1, 0.0);
        for &r in &rewards {
            p.update(0, r);
        }
        let mean: f64 = rewards.iter().sum::<f64>() / rewards.len() as f64;
        prop_assert!((p.estimates()[0] - mean).abs() < 1e-9);
    }

    #[test]
    fn estimates_stay_within_reward_range(
        rewards in prop::collection::vec(0.2f64..0.8, 1..100),
        seed in any::<u64>(),
    ) {
        // Zero-init sample-average estimates of pulled arms stay inside the
        // convex hull of {0 (init)} ∪ rewards.
        let mut p = EpsilonGreedy::new(3, 0.3);
        let mut rng = SmallRng::seed_from_u64(seed);
        for &r in &rewards {
            let arm = p.select(None, &mut rng);
            p.update(arm, r);
        }
        for (i, &e) in p.estimates().iter().enumerate() {
            if p.pulls()[i] > 0 {
                prop_assert!((0.2..=0.8).contains(&e), "arm {i}: {e}");
            } else {
                prop_assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn band_mapping_is_total_and_monotone(
        ratios in prop::collection::vec(0.0001f64..1.5, 1..50),
    ) {
        let bands = BandedBandits::new(
            adaedge_bandit::default_band_edges(),
            || EpsilonGreedy::new(2, 0.1),
        );
        let mut sorted = ratios.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut prev_band = 0usize;
        for r in sorted {
            let band = bands.band_of(r);
            prop_assert!(band < bands.n_bands());
            prop_assert!(band >= prev_band, "band index must not decrease as ratio falls");
            prev_band = band;
        }
    }
}
