//! The bandit policy trait and shared arm statistics.

use rand::RngCore;

/// How reward estimates are updated after each pull.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSize {
    /// Incremental sample average: `Q += (R − Q) / N`. Converges on
    /// stationary problems.
    SampleAverage,
    /// Constant step `Q += α (R − Q)`: exponential recency weighting, the
    /// paper's choice for non-stationary data shift (step = 0.5, §V-C).
    Constant(f64),
}

/// A multi-armed bandit policy over `k` arms.
///
/// Arms are dense indices `0..k`; the selection framework maps codec ids to
/// arm indices. Policies are `Send` so a selector can live inside the
/// multithreaded engine. State is O(k) per instance (§III-C).
pub trait Policy: Send {
    /// Number of arms.
    fn n_arms(&self) -> usize;

    /// Pick an arm among those enabled in `mask` (all arms when `None`).
    ///
    /// At least one arm must be enabled; implementations may panic
    /// otherwise. The mask models infeasible arms — e.g. lossless codecs
    /// that cannot reach the target ratio, or BUFF-lossy below its floor.
    fn select(&mut self, mask: Option<&[bool]>, rng: &mut dyn RngCore) -> usize;

    /// Feed back the observed reward for `arm`.
    fn update(&mut self, arm: usize, reward: f64);

    /// Fold `pulls` *foreign* pulls of `arm` totalling `reward_sum` into
    /// this policy's state, as if [`Policy::update`] had been called
    /// `pulls` times with the mean reward `reward_sum / pulls`.
    ///
    /// This is the delta-sync merge primitive for replicated selectors:
    /// a shard replica periodically folds the outcomes other shards
    /// published since its last sync. For sample-average policies the
    /// fold is *exact* — the posterior depends only on per-arm reward
    /// sums and counts, which are order-independent — and implementations
    /// override it with an O(1) closed form. The default replays the mean
    /// `pulls` times, which is exact for sample averages and the standard
    /// mean-field approximation otherwise (constant-step and gradient
    /// policies are order-sensitive, so any merge of concurrent histories
    /// is an approximation; see the shard-equivalence tests for the
    /// measured cost).
    fn fold(&mut self, arm: usize, pulls: u64, reward_sum: f64) {
        if pulls == 0 {
            return;
        }
        let mean = reward_sum / pulls as f64;
        for _ in 0..pulls {
            self.update(arm, mean);
        }
    }

    /// Overwrite `arm`'s posterior with a persisted `(pulls, estimate)`
    /// pair, replacing whatever state the arm held.
    ///
    /// This is the persist-*restore* primitive for evicted fleet streams:
    /// a stream's selector is summarized as per-arm pull counts and value
    /// estimates at eviction, and a fresh policy is rebuilt from those
    /// numbers at re-admission. Estimate-based policies (ε-greedy, UCB)
    /// override this with a direct overwrite, which round-trips **bit
    /// exactly**. The default reconstructs the equivalent reward mass and
    /// folds it in — exact for sample averages up to the `estimate·pulls`
    /// rounding, a mean-field approximation for order-sensitive policies
    /// (a gradient bandit's preferences are not recoverable from means).
    fn restore(&mut self, arm: usize, pulls: u64, estimate: f64) {
        self.fold(arm, pulls, estimate * pulls as f64);
    }

    /// Scale the policy's exploration pressure by `scale` (1.0 = the
    /// configured default, 0.0 = pure exploitation). The link-pressure
    /// degradation path uses this to damp exploration when the uplink is
    /// backlogged — exploring a poorly-compressing arm while frames queue
    /// is bandwidth the device doesn't have. Implementations scale their
    /// exploration knob (ε, UCB's `c`); the default is a no-op for
    /// policies without one. At `scale == 1.0` selection must be
    /// bit-identical to never having called this (same RNG draw count).
    fn set_exploration_scale(&mut self, _scale: f64) {}

    /// Current value estimates per arm (for introspection and tests).
    fn estimates(&self) -> &[f64];

    /// Total number of updates seen.
    fn total_pulls(&self) -> u64;

    /// Per-arm pull counts.
    fn pulls(&self) -> &[u64];
}

impl Policy for Box<dyn Policy> {
    fn n_arms(&self) -> usize {
        (**self).n_arms()
    }

    fn select(&mut self, mask: Option<&[bool]>, rng: &mut dyn RngCore) -> usize {
        (**self).select(mask, rng)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        (**self).update(arm, reward)
    }

    fn fold(&mut self, arm: usize, pulls: u64, reward_sum: f64) {
        (**self).fold(arm, pulls, reward_sum)
    }

    fn restore(&mut self, arm: usize, pulls: u64, estimate: f64) {
        (**self).restore(arm, pulls, estimate)
    }

    fn set_exploration_scale(&mut self, scale: f64) {
        (**self).set_exploration_scale(scale)
    }

    fn estimates(&self) -> &[f64] {
        (**self).estimates()
    }

    fn total_pulls(&self) -> u64 {
        (**self).total_pulls()
    }

    fn pulls(&self) -> &[u64] {
        (**self).pulls()
    }
}

/// Argmax over enabled arms, ties broken by lowest index (deterministic).
pub(crate) fn masked_argmax(values: &[f64], mask: Option<&[bool]>) -> usize {
    let enabled = |i: usize| mask.is_none_or(|m| m[i]);
    let mut best: Option<usize> = None;
    for i in 0..values.len() {
        if !enabled(i) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if values[i] > values[b] => best = Some(i),
            _ => {}
        }
    }
    best.expect("mask must enable at least one arm")
}

/// Uniformly pick one enabled arm.
pub(crate) fn masked_uniform(n: usize, mask: Option<&[bool]>, rng: &mut dyn RngCore) -> usize {
    use rand::Rng;
    let enabled: Vec<usize> = (0..n).filter(|&i| mask.is_none_or(|m| m[i])).collect();
    assert!(!enabled.is_empty(), "mask must enable at least one arm");
    enabled[rng.gen_range(0..enabled.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn argmax_respects_mask() {
        let values = [1.0, 5.0, 3.0];
        assert_eq!(masked_argmax(&values, None), 1);
        assert_eq!(masked_argmax(&values, Some(&[true, false, true])), 2);
        assert_eq!(masked_argmax(&values, Some(&[true, false, false])), 0);
    }

    #[test]
    fn argmax_ties_break_low() {
        let values = [2.0, 2.0, 2.0];
        assert_eq!(masked_argmax(&values, None), 0);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn argmax_empty_mask_panics() {
        masked_argmax(&[1.0, 2.0], Some(&[false, false]));
    }

    #[test]
    fn uniform_only_picks_enabled() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let pick = masked_uniform(4, Some(&[false, true, false, true]), &mut rng);
            assert!(pick == 1 || pick == 3);
        }
    }
}
