//! Online min–max normalization for reward signals.
//!
//! MAB rewards in AdaEdge mix quantities with wildly different scales —
//! compressed bytes, bytes/second throughput, accuracies already in
//! [0, 1]. Complex targets (§IV-D3) require each component normalized
//! before weighting; this tracker learns the range as observations arrive.

use serde::{Deserialize, Serialize};

/// Running min–max tracker mapping observations into [0, 1].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Normalizer {
    min: f64,
    max: f64,
    count: u64,
}

impl Default for Normalizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Normalizer {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Record an observation.
    pub fn observe(&mut self, v: f64) {
        if v.is_finite() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            self.count += 1;
        }
    }

    /// Normalize `v` into [0, 1] against the observed range. With fewer
    /// than two distinct observations, returns 0.5 (uninformative).
    pub fn normalize(&self, v: f64) -> f64 {
        if self.count == 0 || self.max <= self.min {
            return 0.5;
        }
        ((v - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Observe then normalize, in one step.
    pub fn observe_and_normalize(&mut self, v: f64) -> f64 {
        self.observe(v);
        self.normalize(v)
    }

    /// Number of finite observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The observed range, if any.
    pub fn range(&self) -> Option<(f64, f64)> {
        (self.count > 0).then_some((self.min, self.max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_range_to_unit_interval() {
        let mut n = Normalizer::new();
        for v in [10.0, 20.0, 30.0] {
            n.observe(v);
        }
        assert_eq!(n.normalize(10.0), 0.0);
        assert_eq!(n.normalize(30.0), 1.0);
        assert_eq!(n.normalize(20.0), 0.5);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut n = Normalizer::new();
        n.observe(0.0);
        n.observe(1.0);
        assert_eq!(n.normalize(5.0), 1.0);
        assert_eq!(n.normalize(-5.0), 0.0);
    }

    #[test]
    fn degenerate_cases_return_half() {
        let n = Normalizer::new();
        assert_eq!(n.normalize(7.0), 0.5);
        let mut n = Normalizer::new();
        n.observe(3.0);
        assert_eq!(n.normalize(3.0), 0.5); // single point: no range yet
    }

    #[test]
    fn ignores_non_finite() {
        let mut n = Normalizer::new();
        n.observe(f64::NAN);
        n.observe(f64::INFINITY);
        assert_eq!(n.count(), 0);
        n.observe(1.0);
        assert_eq!(n.count(), 1);
    }

    #[test]
    fn range_reporting() {
        let mut n = Normalizer::new();
        assert!(n.range().is_none());
        n.observe(-2.0);
        n.observe(4.0);
        assert_eq!(n.range(), Some((-2.0, 4.0)));
    }
}
