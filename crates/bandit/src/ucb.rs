//! Upper Confidence Bound (UCB1) policy: exploration driven by the
//! uncertainty bonus `c · sqrt(ln t / n_a)` instead of random ε-moves, so
//! exploration fades as the environment becomes known (§III-C).

use crate::policy::{masked_argmax, Policy};
use rand::RngCore;

/// UCB1 with exploration constant `c`.
#[derive(Debug, Clone)]
pub struct Ucb {
    c: f64,
    /// Link-pressure damping of the confidence bonus (1.0 = nominal).
    explore_scale: f64,
    q: Vec<f64>,
    n: Vec<u64>,
    total: u64,
}

impl Ucb {
    /// Create a UCB policy; `c` scales the confidence bonus (√2 is the
    /// classic choice).
    pub fn new(n_arms: usize, c: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!(c >= 0.0, "c must be non-negative");
        Self {
            c,
            explore_scale: 1.0,
            q: vec![0.0; n_arms],
            n: vec![0; n_arms],
            total: 0,
        }
    }
}

impl Policy for Ucb {
    fn n_arms(&self) -> usize {
        self.q.len()
    }

    fn select(&mut self, mask: Option<&[bool]>, _rng: &mut dyn RngCore) -> usize {
        let enabled = |i: usize| mask.is_none_or(|m| m[i]);
        // Untried enabled arms first.
        for i in 0..self.q.len() {
            if enabled(i) && self.n[i] == 0 {
                return i;
            }
        }
        let t = (self.total.max(1)) as f64;
        let scores: Vec<f64> = (0..self.q.len())
            .map(|i| {
                if self.n[i] == 0 {
                    f64::NEG_INFINITY // unreachable: handled above when enabled
                } else {
                    self.q[i] + self.c * self.explore_scale * (t.ln() / self.n[i] as f64).sqrt()
                }
            })
            .collect();
        masked_argmax(&scores, mask)
    }

    fn set_exploration_scale(&mut self, scale: f64) {
        assert!((0.0..=1.0).contains(&scale), "scale in [0,1]");
        self.explore_scale = scale;
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.n[arm] += 1;
        self.total += 1;
        self.q[arm] += (reward - self.q[arm]) / self.n[arm] as f64;
    }

    fn fold(&mut self, arm: usize, pulls: u64, reward_sum: f64) {
        // UCB keeps sample-average estimates, so the fold is exact.
        if pulls == 0 {
            return;
        }
        let n0 = self.n[arm];
        self.n[arm] += pulls;
        self.total += pulls;
        self.q[arm] = if n0 == 0 {
            reward_sum / pulls as f64
        } else {
            (self.q[arm] * n0 as f64 + reward_sum) / (n0 + pulls) as f64
        };
    }

    fn restore(&mut self, arm: usize, pulls: u64, estimate: f64) {
        // UCB state is (pulls, estimate) plus the total the confidence
        // bonus divides by; all three restore exactly by overwrite.
        self.total = self.total - self.n[arm] + pulls;
        self.n[arm] = pulls;
        self.q[arm] = estimate;
    }

    fn estimates(&self) -> &[f64] {
        &self.q
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }

    fn pulls(&self) -> &[u64] {
        &self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tries_every_arm_once_first() {
        let mut p = Ucb::new(4, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let arm = p.select(None, &mut rng);
            seen.insert(arm);
            p.update(arm, 0.5);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn converges_to_best_arm() {
        let mut p = Ucb::new(3, 1.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let means = [0.3, 0.9, 0.5];
        let mut pulls = [0u64; 3];
        for _ in 0..3000 {
            let arm = p.select(None, &mut rng);
            pulls[arm] += 1;
            let noise: f64 = rng.gen::<f64>() * 0.1 - 0.05;
            p.update(arm, means[arm] + noise);
        }
        assert!(pulls[1] > 2500, "pulls {pulls:?}");
    }

    #[test]
    fn exploration_fades_over_time() {
        // The share of suboptimal pulls in the second half should be lower
        // than in the first half.
        let mut p = Ucb::new(2, 2.0);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut subopt = [0u64; 2]; // [first half, second half]
        for t in 0..2000 {
            let arm = p.select(None, &mut rng);
            if arm == 0 {
                subopt[(t >= 1000) as usize] += 1;
            }
            let r = if arm == 1 { 1.0 } else { 0.4 };
            p.update(arm, r);
        }
        assert!(subopt[1] <= subopt[0], "{subopt:?}");
    }

    #[test]
    fn respects_mask() {
        let mut p = Ucb::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let arm = p.select(Some(&[true, false, true]), &mut rng);
            assert_ne!(arm, 1);
            p.update(arm, 0.1);
        }
    }

    #[test]
    fn exploration_scale_zero_collapses_to_greedy() {
        let mut p = Ucb::new(2, 5.0);
        let mut rng = SmallRng::seed_from_u64(4);
        // Arm 1 has the better estimate but far fewer pulls: the full
        // bonus would pick arm 0; scale 0 must go straight to arm 1.
        p.restore(0, 500, 0.4);
        p.restore(1, 5, 0.6);
        p.set_exploration_scale(0.0);
        assert_eq!(p.select(None, &mut rng), 1);
        p.set_exploration_scale(1.0);
        assert_eq!(p.select(None, &mut rng), 1, "5 pulls carry a big bonus");
        p.restore(1, 5000, 0.6);
        assert_eq!(p.select(None, &mut rng), 0, "restored bonus favors 0");
    }

    #[test]
    fn zero_c_is_pure_greedy_after_warmup() {
        let mut p = Ucb::new(2, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        p.update(0, 0.9);
        p.update(1, 0.1);
        for _ in 0..10 {
            assert_eq!(p.select(None, &mut rng), 0);
            p.update(0, 0.9);
        }
    }
}
