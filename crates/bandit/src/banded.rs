//! Ratio-banded bandit set: one independent MAB instance per target
//! compression-ratio range (§IV-C2).
//!
//! The best lossy codec changes with the target ratio (BUFF-lossy wins at
//! moderate ratios, PAA/FFT at aggressive ones), so a single instance
//! would smear rewards across regimes. Offline mode therefore consults the
//! instance owning the band the current target falls into.

use crate::policy::Policy;
use rand::RngCore;

/// A set of bandit instances keyed by compression-ratio band.
pub struct BandedBandits<P: Policy> {
    /// Band edges, descending, e.g. `[1.0, 0.5, 0.25, 0.125, 0.0625]`.
    /// Band `i` covers `(edges[i+1], edges[i]]`; the last band covers
    /// `(0, edges.last()]`.
    edges: Vec<f64>,
    factory: Box<dyn Fn() -> P + Send>,
    bands: Vec<Option<P>>,
}

impl<P: Policy> std::fmt::Debug for BandedBandits<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandedBandits")
            .field("edges", &self.edges)
            .field(
                "instantiated",
                &self.bands.iter().filter(|b| b.is_some()).count(),
            )
            .finish()
    }
}

/// The default band edges: each band halves the ratio, mirroring the
/// offline recoding cascade that halves segment size per pass (§IV-C2).
pub fn default_band_edges() -> Vec<f64> {
    vec![1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125]
}

impl<P: Policy> BandedBandits<P> {
    /// Create a banded set. `edges` must be strictly descending and
    /// positive; `factory` builds a fresh policy for a band on first use.
    pub fn new(edges: Vec<f64>, factory: impl Fn() -> P + Send + 'static) -> Self {
        assert!(!edges.is_empty(), "need at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] > w[1]) && *edges.last().expect("non-empty") > 0.0,
            "edges must be strictly descending and positive"
        );
        let n = edges.len();
        let mut bands = Vec::with_capacity(n);
        bands.resize_with(n, || None);
        Self {
            edges,
            factory: Box::new(factory),
            bands,
        }
    }

    /// Which band a target ratio falls into.
    pub fn band_of(&self, ratio: f64) -> usize {
        // Band i covers (edges[i+1], edges[i]]; ratios above edges[0] clamp
        // to band 0 and ratios at or below the last edge to the final band.
        for i in 0..self.edges.len() - 1 {
            if ratio > self.edges[i + 1] {
                return i;
            }
        }
        self.edges.len() - 1
    }

    /// Number of bands.
    pub fn n_bands(&self) -> usize {
        self.edges.len()
    }

    /// How many bands have been instantiated so far.
    pub fn instantiated(&self) -> usize {
        self.bands.iter().filter(|b| b.is_some()).count()
    }

    /// Access (lazily creating) the policy owning `ratio`'s band.
    pub fn policy_for(&mut self, ratio: f64) -> &mut P {
        let band = self.band_of(ratio);
        self.bands[band].get_or_insert_with(|| (self.factory)())
    }

    /// Select an arm for a target ratio.
    pub fn select(&mut self, ratio: f64, mask: Option<&[bool]>, rng: &mut dyn RngCore) -> usize {
        self.policy_for(ratio).select(mask, rng)
    }

    /// Update the band owning `ratio` with an observed reward.
    pub fn update(&mut self, ratio: f64, arm: usize, reward: f64) {
        self.policy_for(ratio).update(arm, reward);
    }

    /// The band's current greedy arm and its estimate, restricted to the
    /// enabled arms in `mask` (all arms when `None`).
    ///
    /// Arms that have actually been pulled are preferred over arms whose
    /// estimate is still the (optimistic) initial value, so callers can use
    /// the result as a trustworthy reference point.
    pub fn greedy(&mut self, ratio: f64, mask: Option<&[bool]>) -> (usize, f64) {
        let policy = self.policy_for(ratio);
        let est = policy.estimates().to_vec();
        let pulls = policy.pulls().to_vec();
        let pick = |require_pulled: bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            for i in 0..est.len() {
                if mask.is_none_or(|m| m[i]) && (!require_pulled || pulls[i] > 0) {
                    match best {
                        None => best = Some(i),
                        Some(b) if est[i] > est[b] => best = Some(i),
                        _ => {}
                    }
                }
            }
            best
        };
        let b = pick(true)
            .or_else(|| pick(false))
            .expect("mask must enable at least one arm");
        (b, est[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egreedy::EpsilonGreedy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn set() -> BandedBandits<EpsilonGreedy> {
        BandedBandits::new(default_band_edges(), || EpsilonGreedy::new(3, 0.1))
    }

    #[test]
    fn band_mapping() {
        let b = set();
        assert_eq!(b.band_of(1.0), 0);
        assert_eq!(b.band_of(0.9), 0);
        assert_eq!(b.band_of(0.5), 1);
        assert_eq!(b.band_of(0.3), 1);
        assert_eq!(b.band_of(0.25), 2);
        assert_eq!(b.band_of(0.13), 2);
        assert_eq!(b.band_of(0.125), 3);
        assert_eq!(b.band_of(0.07), 3);
        assert_eq!(b.band_of(0.01), 5);
    }

    #[test]
    fn bands_learn_independently() {
        let mut b = set();
        let mut rng = SmallRng::seed_from_u64(17);
        // Arm 0 pays in the coarse band; arm 2 pays in the fine band.
        for _ in 0..500 {
            let arm = b.select(0.8, None, &mut rng);
            b.update(0.8, arm, if arm == 0 { 1.0 } else { 0.0 });
            let arm = b.select(0.05, None, &mut rng);
            b.update(0.05, arm, if arm == 2 { 1.0 } else { 0.0 });
        }
        let coarse = b.policy_for(0.8).estimates().to_vec();
        let fine = b.policy_for(0.05).estimates().to_vec();
        assert!(coarse[0] > coarse[2], "{coarse:?}");
        assert!(fine[2] > fine[0], "{fine:?}");
    }

    #[test]
    fn lazy_instantiation() {
        let mut b = set();
        assert_eq!(b.instantiated(), 0);
        b.policy_for(0.5);
        assert_eq!(b.instantiated(), 1);
        b.policy_for(0.4); // same band
        assert_eq!(b.instantiated(), 1);
        b.policy_for(0.01);
        assert_eq!(b.instantiated(), 2);
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn bad_edges_rejected() {
        BandedBandits::new(vec![0.5, 0.5], || EpsilonGreedy::new(2, 0.1));
    }
}
