//! ε-greedy and optimistic ε-greedy policies — the algorithms AdaEdge's
//! evaluation uses (ε = 0.1 offline, 0.01 online; optimistic initial
//! values push early exploration; constant step 0.5 for data shift).

use crate::policy::{masked_argmax, masked_uniform, Policy, StepSize};
use rand::{Rng, RngCore};

/// ε-greedy with configurable initial estimates and step size.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    epsilon: f64,
    /// Link-pressure damping of ε (1.0 = nominal). Kept separate from
    /// `epsilon` so releasing the pressure restores the configured rate
    /// exactly.
    explore_scale: f64,
    q: Vec<f64>,
    n: Vec<u64>,
    step: StepSize,
    total: u64,
}

impl EpsilonGreedy {
    /// Plain ε-greedy with zero-initialized estimates and sample-average
    /// updates.
    pub fn new(n_arms: usize, epsilon: f64) -> Self {
        Self::with_options(n_arms, epsilon, 0.0, StepSize::SampleAverage)
    }

    /// Optimistic ε-greedy: initial estimates set high so every arm gets
    /// tried early even under a greedy rule (§III-C).
    pub fn optimistic(n_arms: usize, epsilon: f64, initial: f64) -> Self {
        Self::with_options(n_arms, epsilon, initial, StepSize::SampleAverage)
    }

    /// Fully configurable constructor.
    pub fn with_options(n_arms: usize, epsilon: f64, initial: f64, step: StepSize) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon in [0,1]");
        if let StepSize::Constant(a) = step {
            assert!(a > 0.0 && a <= 1.0, "step alpha in (0,1]");
        }
        Self {
            epsilon,
            explore_scale: 1.0,
            q: vec![initial; n_arms],
            n: vec![0; n_arms],
            step,
            total: 0,
        }
    }

    /// The exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Policy for EpsilonGreedy {
    fn n_arms(&self) -> usize {
        self.q.len()
    }

    fn select(&mut self, mask: Option<&[bool]>, rng: &mut dyn RngCore) -> usize {
        // The explore draw happens whenever ε > 0, scaled or not, so a
        // scale of exactly 1.0 is bit-identical (same RNG draw count) to
        // never having scaled.
        if self.epsilon > 0.0 && rng.gen::<f64>() < self.epsilon * self.explore_scale {
            masked_uniform(self.q.len(), mask, rng)
        } else {
            masked_argmax(&self.q, mask)
        }
    }

    fn set_exploration_scale(&mut self, scale: f64) {
        assert!((0.0..=1.0).contains(&scale), "scale in [0,1]");
        self.explore_scale = scale;
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.n[arm] += 1;
        self.total += 1;
        match self.step {
            StepSize::SampleAverage => {
                self.q[arm] += (reward - self.q[arm]) / self.n[arm] as f64;
            }
            StepSize::Constant(alpha) => {
                self.q[arm] += alpha * (reward - self.q[arm]);
            }
        }
    }

    fn fold(&mut self, arm: usize, pulls: u64, reward_sum: f64) {
        if pulls == 0 {
            return;
        }
        let k = pulls as f64;
        let n0 = self.n[arm];
        self.n[arm] += pulls;
        self.total += pulls;
        match self.step {
            StepSize::SampleAverage => {
                // Exact: the sample average depends only on sum and count.
                // An untouched arm's optimistic initial estimate is *not* a
                // reward sum, so the first fold replaces it outright —
                // matching the incremental rule, whose first update sets
                // `q = r` regardless of the initial value.
                self.q[arm] = if n0 == 0 {
                    reward_sum / k
                } else {
                    (self.q[arm] * n0 as f64 + reward_sum) / (n0 as f64 + k)
                };
            }
            StepSize::Constant(alpha) => {
                // Closed form of k updates at the mean reward:
                // Q' = (1-α)^k Q + (1 − (1-α)^k) r̄.
                let keep = (1.0 - alpha).powf(k);
                self.q[arm] = keep * self.q[arm] + (1.0 - keep) * (reward_sum / k);
            }
        }
    }

    fn restore(&mut self, arm: usize, pulls: u64, estimate: f64) {
        // ε-greedy state *is* (pulls, estimate), so a persisted posterior
        // restores bit exactly by overwriting — no reward replay, no
        // rounding through a reconstructed sum.
        self.total = self.total - self.n[arm] + pulls;
        self.n[arm] = pulls;
        self.q[arm] = estimate;
    }

    fn estimates(&self) -> &[f64] {
        &self.q
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }

    fn pulls(&self) -> &[u64] {
        &self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A 3-arm Bernoulli-ish bandit with known means.
    fn run(policy: &mut dyn Policy, means: &[f64], steps: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pulls = vec![0u64; means.len()];
        for _ in 0..steps {
            let arm = policy.select(None, &mut rng);
            pulls[arm] += 1;
            // Noisy reward around the mean.
            let noise: f64 = rng.gen::<f64>() * 0.1 - 0.05;
            policy.update(arm, means[arm] + noise);
        }
        pulls
    }

    #[test]
    fn converges_to_best_arm() {
        let mut p = EpsilonGreedy::new(3, 0.1);
        let pulls = run(&mut p, &[0.2, 0.8, 0.5], 2000, 42);
        assert!(pulls[1] > 1500, "best arm pulled {} times", pulls[1]);
        let est = p.estimates();
        assert!((est[1] - 0.8).abs() < 0.05);
    }

    #[test]
    fn optimistic_init_explores_all_arms_greedily() {
        // Pure greedy (ε=0) with optimistic init still tries every arm.
        let mut p = EpsilonGreedy::optimistic(5, 0.0, 10.0);
        let pulls = run(&mut p, &[0.1, 0.2, 0.3, 0.4, 0.9], 500, 7);
        assert!(pulls.iter().all(|&c| c > 0), "pulls {pulls:?}");
        assert!(pulls[4] > 400);
    }

    #[test]
    fn zero_init_greedy_can_get_stuck_but_eps_escapes() {
        // ε=0 with zero init exploits the first decent arm; ε=0.2 finds the
        // true best. This is the explore/exploit contrast from §III-C.
        let mut greedy = EpsilonGreedy::new(3, 0.0);
        let g_pulls = run(&mut greedy, &[0.5, 0.9, 0.4], 1000, 3);
        let mut eps = EpsilonGreedy::new(3, 0.2);
        let e_pulls = run(&mut eps, &[0.5, 0.9, 0.4], 1000, 3);
        assert!(e_pulls[1] >= g_pulls[1]);
        assert!(e_pulls[1] > 600, "{e_pulls:?}");
    }

    #[test]
    fn constant_step_tracks_nonstationary_shift() {
        let mut p = EpsilonGreedy::with_options(2, 0.1, 0.0, StepSize::Constant(0.5));
        let mut rng = SmallRng::seed_from_u64(11);
        // Phase 1: arm 0 pays. Phase 2: arm 1 pays.
        for phase in 0..2 {
            for _ in 0..300 {
                let arm = p.select(None, &mut rng);
                let reward = if arm == phase { 1.0 } else { 0.0 };
                p.update(arm, reward);
            }
        }
        // After the shift the estimate for arm 1 dominates quickly.
        assert!(p.estimates()[1] > p.estimates()[0]);
    }

    #[test]
    fn sample_average_adapts_slower_than_constant_step() {
        let drive = |step: StepSize| -> f64 {
            let mut p = EpsilonGreedy::with_options(1, 0.0, 0.0, step);
            // 500 rewards of 0.0, then 50 rewards of 1.0.
            for _ in 0..500 {
                p.update(0, 0.0);
            }
            for _ in 0..50 {
                p.update(0, 1.0);
            }
            p.estimates()[0]
        };
        let avg = drive(StepSize::SampleAverage);
        let fast = drive(StepSize::Constant(0.5));
        assert!(fast > 0.9, "constant step estimate {fast}");
        assert!(avg < 0.2, "sample average estimate {avg}");
    }

    #[test]
    fn fold_matches_sequential_mean_updates_sample_average() {
        // Folding (k pulls, sum S) must equal any sequence of k updates
        // totalling S — sample averages are order-independent.
        let mut seq = EpsilonGreedy::optimistic(2, 0.1, 1.0);
        let mut folded = EpsilonGreedy::optimistic(2, 0.1, 1.0);
        let rewards = [0.3, 0.9, 0.6, 0.0, 0.45];
        for &r in &rewards {
            seq.update(0, r);
        }
        folded.fold(0, rewards.len() as u64, rewards.iter().sum());
        assert!((seq.estimates()[0] - folded.estimates()[0]).abs() < 1e-12);
        assert_eq!(seq.pulls(), folded.pulls());
        assert_eq!(seq.total_pulls(), folded.total_pulls());
        // Untouched arm keeps its optimistic estimate in both.
        assert_eq!(seq.estimates()[1], 1.0);
        assert_eq!(folded.estimates()[1], 1.0);
    }

    #[test]
    fn fold_matches_replayed_mean_constant_step() {
        // The constant-step closed form must equal k literal updates at
        // the mean reward (the documented mean-field semantics).
        let mut seq = EpsilonGreedy::with_options(1, 0.0, 0.0, StepSize::Constant(0.5));
        let mut folded = EpsilonGreedy::with_options(1, 0.0, 0.0, StepSize::Constant(0.5));
        seq.update(0, 0.2);
        folded.update(0, 0.2);
        let (k, sum) = (7u64, 7.0 * 0.8);
        for _ in 0..k {
            seq.update(0, 0.8);
        }
        folded.fold(0, k, sum);
        assert!((seq.estimates()[0] - folded.estimates()[0]).abs() < 1e-12);
        assert_eq!(seq.pulls(), folded.pulls());
    }

    #[test]
    fn restore_round_trips_bit_exactly() {
        // Evict/restore cycle: a fresh policy fed a posterior snapshot
        // must be indistinguishable from the original, bit for bit.
        let mut original = EpsilonGreedy::optimistic(3, 0.1, 1.0);
        for (arm, r) in [(0, 0.3), (1, 0.9), (0, 0.6), (2, 0.123456789), (1, 0.4)] {
            original.update(arm, r);
        }
        let mut restored = EpsilonGreedy::optimistic(3, 0.1, 1.0);
        for arm in 0..3 {
            restored.restore(arm, original.pulls()[arm], original.estimates()[arm]);
        }
        assert_eq!(original.estimates(), restored.estimates());
        assert_eq!(original.pulls(), restored.pulls());
        assert_eq!(original.total_pulls(), restored.total_pulls());
        // Further updates evolve identically from the restored state.
        original.update(1, 0.77);
        restored.update(1, 0.77);
        assert_eq!(original.estimates(), restored.estimates());
    }

    #[test]
    fn restore_of_unpulled_arm_keeps_optimistic_init() {
        let mut p = EpsilonGreedy::optimistic(2, 0.1, 1.0);
        p.restore(0, 0, 1.0);
        assert_eq!(p.estimates(), &[1.0, 1.0]);
        assert_eq!(p.pulls(), &[0, 0]);
        assert_eq!(p.total_pulls(), 0);
    }

    #[test]
    fn fold_zero_pulls_is_a_no_op() {
        let mut p = EpsilonGreedy::optimistic(2, 0.1, 1.0);
        p.fold(0, 0, 0.0);
        assert_eq!(p.pulls(), &[0, 0]);
        assert_eq!(p.estimates(), &[1.0, 1.0]);
    }

    #[test]
    fn respects_mask() {
        let mut p = EpsilonGreedy::new(3, 1.0); // always explore
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let arm = p.select(Some(&[false, true, false]), &mut rng);
            assert_eq!(arm, 1);
        }
    }

    #[test]
    fn exploration_scale_damps_and_restores() {
        // Scale 0: never explores (pure argmax). Scale back to 1.0:
        // behaves exactly like a never-scaled twin from the same seed.
        let mut p = EpsilonGreedy::new(3, 1.0);
        p.set_exploration_scale(0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        p.update(2, 0.9);
        for _ in 0..50 {
            assert_eq!(p.select(None, &mut rng), 2, "scale 0 is greedy");
        }
        p.set_exploration_scale(1.0);
        let mut twin = EpsilonGreedy::new(3, 1.0);
        twin.update(2, 0.9);
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(p.select(None, &mut r1), twin.select(None, &mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        EpsilonGreedy::new(2, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_rejected() {
        EpsilonGreedy::new(0, 0.1);
    }
}
