//! Gradient bandit: softmax action preferences updated by stochastic
//! gradient ascent against a running reward baseline. The paper cites this
//! family (§III-C) without adopting it; we include it as an ablation arm.

use crate::policy::Policy;
use rand::{Rng, RngCore};

/// Gradient bandit with learning rate `alpha`.
#[derive(Debug, Clone)]
pub struct GradientBandit {
    alpha: f64,
    h: Vec<f64>,
    baseline: f64,
    total: u64,
    n: Vec<u64>,
    /// Scratch estimates exposed via `estimates()` (the preferences).
    probs: Vec<f64>,
}

impl GradientBandit {
    /// Create a gradient bandit; `alpha` is the preference learning rate.
    pub fn new(n_arms: usize, alpha: f64) -> Self {
        assert!(n_arms > 0, "need at least one arm");
        assert!(alpha > 0.0, "alpha must be positive");
        Self {
            alpha,
            h: vec![0.0; n_arms],
            baseline: 0.0,
            total: 0,
            n: vec![0; n_arms],
            probs: vec![1.0 / n_arms as f64; n_arms],
        }
    }

    fn softmax(&mut self, mask: Option<&[bool]>) {
        let enabled = |i: usize| mask.is_none_or(|m| m[i]);
        let max_h = (0..self.h.len())
            .filter(|&i| enabled(i))
            .map(|i| self.h[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for i in 0..self.h.len() {
            self.probs[i] = if enabled(i) {
                (self.h[i] - max_h).exp()
            } else {
                0.0
            };
            sum += self.probs[i];
        }
        assert!(sum > 0.0, "mask must enable at least one arm");
        for p in self.probs.iter_mut() {
            *p /= sum;
        }
    }
}

impl Policy for GradientBandit {
    fn n_arms(&self) -> usize {
        self.h.len()
    }

    fn select(&mut self, mask: Option<&[bool]>, rng: &mut dyn RngCore) -> usize {
        self.softmax(mask);
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        // Floating-point tail: last enabled arm.
        (0..self.h.len())
            .rev()
            .find(|&i| mask.is_none_or(|m| m[i]))
            .expect("mask must enable at least one arm")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.total += 1;
        self.n[arm] += 1;
        self.baseline += (reward - self.baseline) / self.total as f64;
        self.softmax(None);
        let advantage = reward - self.baseline;
        for i in 0..self.h.len() {
            if i == arm {
                self.h[i] += self.alpha * advantage * (1.0 - self.probs[i]);
            } else {
                self.h[i] -= self.alpha * advantage * self.probs[i];
            }
        }
    }

    fn estimates(&self) -> &[f64] {
        &self.h
    }

    fn total_pulls(&self) -> u64 {
        self.total
    }

    fn pulls(&self) -> &[u64] {
        &self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_best_arm() {
        let mut p = GradientBandit::new(3, 0.2);
        let mut rng = SmallRng::seed_from_u64(13);
        let means = [0.2, 0.9, 0.4];
        let mut pulls = [0u64; 3];
        for _ in 0..3000 {
            let arm = p.select(None, &mut rng);
            pulls[arm] += 1;
            p.update(arm, means[arm]);
        }
        assert!(pulls[1] > 2000, "pulls {pulls:?}");
        assert!(p.estimates()[1] > p.estimates()[0]);
    }

    #[test]
    fn respects_mask() {
        let mut p = GradientBandit::new(3, 0.1);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            let arm = p.select(Some(&[false, false, true]), &mut rng);
            assert_eq!(arm, 2);
        }
    }

    #[test]
    fn baseline_tracks_mean_reward() {
        let mut p = GradientBandit::new(2, 0.1);
        for _ in 0..100 {
            p.update(0, 0.6);
        }
        assert!((p.baseline - 0.6).abs() < 1e-9);
    }
}
