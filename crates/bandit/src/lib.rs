//! # adaedge-bandit
//!
//! Multi-armed bandit policies backing AdaEdge's compression selection
//! (§III-C, §IV-C): ε-greedy with optimistic initialization and constant
//! step sizes for non-stationary streams, UCB1, a gradient bandit for
//! ablations, plus the ratio-banded bandit set that offline mode uses to
//! keep one instance per compression-ratio range.
//!
//! ```
//! use adaedge_bandit::{EpsilonGreedy, Policy};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut mab = EpsilonGreedy::optimistic(3, 0.1, 1.0);
//! let mut rng = SmallRng::seed_from_u64(1);
//! for _ in 0..500 {
//!     let arm = mab.select(None, &mut rng);
//!     let reward = [0.2, 0.9, 0.4][arm];
//!     mab.update(arm, reward);
//! }
//! // The middle arm pays best, so its estimate dominates.
//! assert!(mab.estimates()[1] > mab.estimates()[0]);
//! assert!(mab.estimates()[1] > mab.estimates()[2]);
//! ```

#![warn(missing_docs)]

pub mod banded;
pub mod egreedy;
pub mod gradient;
pub mod normalize;
pub mod policy;
pub mod ucb;

pub use banded::{default_band_edges, BandedBandits};
pub use egreedy::EpsilonGreedy;
pub use gradient::GradientBandit;
pub use normalize::Normalizer;
pub use policy::{Policy, StepSize};
pub use ucb::Ucb;
