/root/repo/target/release/deps/fig15_data_shift-283b33c16cd4e6a7.d: crates/bench/src/bin/fig15_data_shift.rs

/root/repo/target/release/deps/fig15_data_shift-283b33c16cd4e6a7: crates/bench/src/bin/fig15_data_shift.rs

crates/bench/src/bin/fig15_data_shift.rs:
