/root/repo/target/release/deps/fig07_online_ml-8e45f1f95ebfc47f.d: crates/bench/src/bin/fig07_online_ml.rs

/root/repo/target/release/deps/fig07_online_ml-8e45f1f95ebfc47f: crates/bench/src/bin/fig07_online_ml.rs

crates/bench/src/bin/fig07_online_ml.rs:
