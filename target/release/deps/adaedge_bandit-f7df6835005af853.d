/root/repo/target/release/deps/adaedge_bandit-f7df6835005af853.d: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs

/root/repo/target/release/deps/libadaedge_bandit-f7df6835005af853.rlib: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs

/root/repo/target/release/deps/libadaedge_bandit-f7df6835005af853.rmeta: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs

crates/bandit/src/lib.rs:
crates/bandit/src/banded.rs:
crates/bandit/src/egreedy.rs:
crates/bandit/src/gradient.rs:
crates/bandit/src/normalize.rs:
crates/bandit/src/policy.rs:
crates/bandit/src/ucb.rs:
