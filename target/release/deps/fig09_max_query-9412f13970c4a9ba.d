/root/repo/target/release/deps/fig09_max_query-9412f13970c4a9ba.d: crates/bench/src/bin/fig09_max_query.rs

/root/repo/target/release/deps/fig09_max_query-9412f13970c4a9ba: crates/bench/src/bin/fig09_max_query.rs

crates/bench/src/bin/fig09_max_query.rs:
