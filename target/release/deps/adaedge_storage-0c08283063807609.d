/root/repo/target/release/deps/adaedge_storage-0c08283063807609.d: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/release/deps/libadaedge_storage-0c08283063807609.rlib: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/release/deps/libadaedge_storage-0c08283063807609.rmeta: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

crates/storage/src/lib.rs:
crates/storage/src/persist.rs:
crates/storage/src/policy.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
