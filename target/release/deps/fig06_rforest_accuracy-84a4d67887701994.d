/root/repo/target/release/deps/fig06_rforest_accuracy-84a4d67887701994.d: crates/bench/src/bin/fig06_rforest_accuracy.rs

/root/repo/target/release/deps/fig06_rforest_accuracy-84a4d67887701994: crates/bench/src/bin/fig06_rforest_accuracy.rs

crates/bench/src/bin/fig06_rforest_accuracy.rs:
