/root/repo/target/release/deps/fig03_egress_rate-be85ed72e99f13d6.d: crates/bench/src/bin/fig03_egress_rate.rs

/root/repo/target/release/deps/fig03_egress_rate-be85ed72e99f13d6: crates/bench/src/bin/fig03_egress_rate.rs

crates/bench/src/bin/fig03_egress_rate.rs:
