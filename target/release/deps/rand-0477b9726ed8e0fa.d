/root/repo/target/release/deps/rand-0477b9726ed8e0fa.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-0477b9726ed8e0fa.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-0477b9726ed8e0fa.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
