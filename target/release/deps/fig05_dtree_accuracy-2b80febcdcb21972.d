/root/repo/target/release/deps/fig05_dtree_accuracy-2b80febcdcb21972.d: crates/bench/src/bin/fig05_dtree_accuracy.rs

/root/repo/target/release/deps/fig05_dtree_accuracy-2b80febcdcb21972: crates/bench/src/bin/fig05_dtree_accuracy.rs

crates/bench/src/bin/fig05_dtree_accuracy.rs:
