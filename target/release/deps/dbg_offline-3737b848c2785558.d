/root/repo/target/release/deps/dbg_offline-3737b848c2785558.d: crates/bench/src/bin/dbg_offline.rs

/root/repo/target/release/deps/dbg_offline-3737b848c2785558: crates/bench/src/bin/dbg_offline.rs

crates/bench/src/bin/dbg_offline.rs:
