/root/repo/target/release/deps/golden_wire_format-a566d897332320df.d: crates/codecs/tests/golden_wire_format.rs

/root/repo/target/release/deps/golden_wire_format-a566d897332320df: crates/codecs/tests/golden_wire_format.rs

crates/codecs/tests/golden_wire_format.rs:
