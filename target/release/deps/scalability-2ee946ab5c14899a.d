/root/repo/target/release/deps/scalability-2ee946ab5c14899a.d: crates/bench/src/bin/scalability.rs

/root/repo/target/release/deps/scalability-2ee946ab5c14899a: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
