/root/repo/target/release/deps/fig04_cascade-e76aa39d2ad471e5.d: crates/bench/src/bin/fig04_cascade.rs

/root/repo/target/release/deps/fig04_cascade-e76aa39d2ad471e5: crates/bench/src/bin/fig04_cascade.rs

crates/bench/src/bin/fig04_cascade.rs:
