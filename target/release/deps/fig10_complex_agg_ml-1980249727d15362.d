/root/repo/target/release/deps/fig10_complex_agg_ml-1980249727d15362.d: crates/bench/src/bin/fig10_complex_agg_ml.rs

/root/repo/target/release/deps/fig10_complex_agg_ml-1980249727d15362: crates/bench/src/bin/fig10_complex_agg_ml.rs

crates/bench/src/bin/fig10_complex_agg_ml.rs:
