/root/repo/target/release/deps/criterion-3a57eaf6d610b9fc.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a57eaf6d610b9fc.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3a57eaf6d610b9fc.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
