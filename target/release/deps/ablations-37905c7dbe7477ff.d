/root/repo/target/release/deps/ablations-37905c7dbe7477ff.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-37905c7dbe7477ff: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
