/root/repo/target/release/deps/adaedge-5599e48c7918a44d.d: src/lib.rs

/root/repo/target/release/deps/libadaedge-5599e48c7918a44d.rlib: src/lib.rs

/root/repo/target/release/deps/libadaedge-5599e48c7918a44d.rmeta: src/lib.rs

src/lib.rs:
