/root/repo/target/release/deps/proptest-15768840b6090348.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-15768840b6090348.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-15768840b6090348.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
