/root/repo/target/release/deps/fig14_highfreq-ae6bf85bb13a6e64.d: crates/bench/src/bin/fig14_highfreq.rs

/root/repo/target/release/deps/fig14_highfreq-ae6bf85bb13a6e64: crates/bench/src/bin/fig14_highfreq.rs

crates/bench/src/bin/fig14_highfreq.rs:
