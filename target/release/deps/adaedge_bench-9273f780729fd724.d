/root/repo/target/release/deps/adaedge_bench-9273f780729fd724.d: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

/root/repo/target/release/deps/libadaedge_bench-9273f780729fd724.rlib: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

/root/repo/target/release/deps/libadaedge_bench-9273f780729fd724.rmeta: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

crates/bench/src/lib.rs:
crates/bench/src/agg_figure.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
