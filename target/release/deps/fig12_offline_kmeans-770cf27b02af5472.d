/root/repo/target/release/deps/fig12_offline_kmeans-770cf27b02af5472.d: crates/bench/src/bin/fig12_offline_kmeans.rs

/root/repo/target/release/deps/fig12_offline_kmeans-770cf27b02af5472: crates/bench/src/bin/fig12_offline_kmeans.rs

crates/bench/src/bin/fig12_offline_kmeans.rs:
