/root/repo/target/release/deps/fig08_sum_query-9cc629701d4f2779.d: crates/bench/src/bin/fig08_sum_query.rs

/root/repo/target/release/deps/fig08_sum_query-9cc629701d4f2779: crates/bench/src/bin/fig08_sum_query.rs

crates/bench/src/bin/fig08_sum_query.rs:
