/root/repo/target/release/deps/adaedge_core-d5c37c5073fefb72.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

/root/repo/target/release/deps/libadaedge_core-d5c37c5073fefb72.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

/root/repo/target/release/deps/libadaedge_core-d5c37c5073fefb72.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/constraints.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/query.rs:
crates/core/src/selector.rs:
crates/core/src/targets.rs:
