/root/repo/target/release/deps/adaedge_datasets-56488f28dcf0d129.d: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

/root/repo/target/release/deps/libadaedge_datasets-56488f28dcf0d129.rlib: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

/root/repo/target/release/deps/libadaedge_datasets-56488f28dcf0d129.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

crates/datasets/src/lib.rs:
crates/datasets/src/cbf.rs:
crates/datasets/src/rng.rs:
crates/datasets/src/stream.rs:
crates/datasets/src/synthetic.rs:
