/root/repo/target/release/deps/fig11_complex_speed_ml-482b95b656e17317.d: crates/bench/src/bin/fig11_complex_speed_ml.rs

/root/repo/target/release/deps/fig11_complex_speed_ml-482b95b656e17317: crates/bench/src/bin/fig11_complex_speed_ml.rs

crates/bench/src/bin/fig11_complex_speed_ml.rs:
