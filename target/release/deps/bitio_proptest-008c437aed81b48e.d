/root/repo/target/release/deps/bitio_proptest-008c437aed81b48e.d: crates/codecs/tests/bitio_proptest.rs

/root/repo/target/release/deps/bitio_proptest-008c437aed81b48e: crates/codecs/tests/bitio_proptest.rs

crates/codecs/tests/bitio_proptest.rs:
