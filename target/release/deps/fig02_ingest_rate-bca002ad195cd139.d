/root/repo/target/release/deps/fig02_ingest_rate-bca002ad195cd139.d: crates/bench/src/bin/fig02_ingest_rate.rs

/root/repo/target/release/deps/fig02_ingest_rate-bca002ad195cd139: crates/bench/src/bin/fig02_ingest_rate.rs

crates/bench/src/bin/fig02_ingest_rate.rs:
