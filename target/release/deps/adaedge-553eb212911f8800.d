/root/repo/target/release/deps/adaedge-553eb212911f8800.d: src/bin/adaedge.rs

/root/repo/target/release/deps/adaedge-553eb212911f8800: src/bin/adaedge.rs

src/bin/adaedge.rs:
