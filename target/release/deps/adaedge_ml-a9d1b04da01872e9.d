/root/repo/target/release/deps/adaedge_ml-a9d1b04da01872e9.d: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs

/root/repo/target/release/deps/libadaedge_ml-a9d1b04da01872e9.rlib: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs

/root/repo/target/release/deps/libadaedge_ml-a9d1b04da01872e9.rmeta: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs

crates/ml/src/lib.rs:
crates/ml/src/data.rs:
crates/ml/src/dtree.rs:
crates/ml/src/forest.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/metrics.rs:
crates/ml/src/model.rs:
