/root/repo/target/release/deps/bitio-ac91adb27baf405f.d: crates/bench/benches/bitio.rs

/root/repo/target/release/deps/bitio-ac91adb27baf405f: crates/bench/benches/bitio.rs

crates/bench/benches/bitio.rs:
