/root/repo/target/debug/deps/fig15_data_shift-5af666893bbb06a4.d: crates/bench/src/bin/fig15_data_shift.rs

/root/repo/target/debug/deps/fig15_data_shift-5af666893bbb06a4: crates/bench/src/bin/fig15_data_shift.rs

crates/bench/src/bin/fig15_data_shift.rs:
