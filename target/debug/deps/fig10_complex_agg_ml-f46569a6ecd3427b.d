/root/repo/target/debug/deps/fig10_complex_agg_ml-f46569a6ecd3427b.d: crates/bench/src/bin/fig10_complex_agg_ml.rs

/root/repo/target/debug/deps/fig10_complex_agg_ml-f46569a6ecd3427b: crates/bench/src/bin/fig10_complex_agg_ml.rs

crates/bench/src/bin/fig10_complex_agg_ml.rs:
