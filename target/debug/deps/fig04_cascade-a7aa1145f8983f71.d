/root/repo/target/debug/deps/fig04_cascade-a7aa1145f8983f71.d: crates/bench/src/bin/fig04_cascade.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_cascade-a7aa1145f8983f71.rmeta: crates/bench/src/bin/fig04_cascade.rs Cargo.toml

crates/bench/src/bin/fig04_cascade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
