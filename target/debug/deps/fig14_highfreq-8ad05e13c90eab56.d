/root/repo/target/debug/deps/fig14_highfreq-8ad05e13c90eab56.d: crates/bench/src/bin/fig14_highfreq.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_highfreq-8ad05e13c90eab56.rmeta: crates/bench/src/bin/fig14_highfreq.rs Cargo.toml

crates/bench/src/bin/fig14_highfreq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
