/root/repo/target/debug/deps/adaedge_datasets-62a8f9596da5748b.d: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

/root/repo/target/debug/deps/adaedge_datasets-62a8f9596da5748b: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

crates/datasets/src/lib.rs:
crates/datasets/src/cbf.rs:
crates/datasets/src/rng.rs:
crates/datasets/src/stream.rs:
crates/datasets/src/synthetic.rs:
