/root/repo/target/debug/deps/end_to_end_online-614ff61c3b44b10e.d: tests/end_to_end_online.rs

/root/repo/target/debug/deps/end_to_end_online-614ff61c3b44b10e: tests/end_to_end_online.rs

tests/end_to_end_online.rs:
