/root/repo/target/debug/deps/properties-6c92bdd3caab7ef7.d: crates/bandit/tests/properties.rs

/root/repo/target/debug/deps/properties-6c92bdd3caab7ef7: crates/bandit/tests/properties.rs

crates/bandit/tests/properties.rs:
