/root/repo/target/debug/deps/adaedge_bench-8df19f2317c60d57.d: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge_bench-8df19f2317c60d57.rmeta: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/agg_figure.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
