/root/repo/target/debug/deps/fig05_dtree_accuracy-db94e699c2735195.d: crates/bench/src/bin/fig05_dtree_accuracy.rs

/root/repo/target/debug/deps/fig05_dtree_accuracy-db94e699c2735195: crates/bench/src/bin/fig05_dtree_accuracy.rs

crates/bench/src/bin/fig05_dtree_accuracy.rs:
