/root/repo/target/debug/deps/adaedge_storage-a4fa9eb4c0cd62de.d: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/debug/deps/libadaedge_storage-a4fa9eb4c0cd62de.rlib: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/debug/deps/libadaedge_storage-a4fa9eb4c0cd62de.rmeta: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

crates/storage/src/lib.rs:
crates/storage/src/persist.rs:
crates/storage/src/policy.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
