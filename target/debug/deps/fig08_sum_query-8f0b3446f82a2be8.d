/root/repo/target/debug/deps/fig08_sum_query-8f0b3446f82a2be8.d: crates/bench/src/bin/fig08_sum_query.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_sum_query-8f0b3446f82a2be8.rmeta: crates/bench/src/bin/fig08_sum_query.rs Cargo.toml

crates/bench/src/bin/fig08_sum_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
