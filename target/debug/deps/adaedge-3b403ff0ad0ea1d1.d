/root/repo/target/debug/deps/adaedge-3b403ff0ad0ea1d1.d: src/lib.rs

/root/repo/target/debug/deps/libadaedge-3b403ff0ad0ea1d1.rlib: src/lib.rs

/root/repo/target/debug/deps/libadaedge-3b403ff0ad0ea1d1.rmeta: src/lib.rs

src/lib.rs:
