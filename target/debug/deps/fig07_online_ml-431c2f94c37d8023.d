/root/repo/target/debug/deps/fig07_online_ml-431c2f94c37d8023.d: crates/bench/src/bin/fig07_online_ml.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_online_ml-431c2f94c37d8023.rmeta: crates/bench/src/bin/fig07_online_ml.rs Cargo.toml

crates/bench/src/bin/fig07_online_ml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
