/root/repo/target/debug/deps/adaedge-c0f4eb80a7000e4b.d: src/bin/adaedge.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge-c0f4eb80a7000e4b.rmeta: src/bin/adaedge.rs Cargo.toml

src/bin/adaedge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
