/root/repo/target/debug/deps/adaedge-583612e9f72b9e61.d: src/lib.rs

/root/repo/target/debug/deps/adaedge-583612e9f72b9e61: src/lib.rs

src/lib.rs:
