/root/repo/target/debug/deps/fig14_highfreq-d9bf922215415875.d: crates/bench/src/bin/fig14_highfreq.rs

/root/repo/target/debug/deps/fig14_highfreq-d9bf922215415875: crates/bench/src/bin/fig14_highfreq.rs

crates/bench/src/bin/fig14_highfreq.rs:
