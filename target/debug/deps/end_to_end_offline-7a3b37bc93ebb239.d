/root/repo/target/debug/deps/end_to_end_offline-7a3b37bc93ebb239.d: tests/end_to_end_offline.rs

/root/repo/target/debug/deps/end_to_end_offline-7a3b37bc93ebb239: tests/end_to_end_offline.rs

tests/end_to_end_offline.rs:
