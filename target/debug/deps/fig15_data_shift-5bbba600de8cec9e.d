/root/repo/target/debug/deps/fig15_data_shift-5bbba600de8cec9e.d: crates/bench/src/bin/fig15_data_shift.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_data_shift-5bbba600de8cec9e.rmeta: crates/bench/src/bin/fig15_data_shift.rs Cargo.toml

crates/bench/src/bin/fig15_data_shift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
