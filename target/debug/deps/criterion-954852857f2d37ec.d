/root/repo/target/debug/deps/criterion-954852857f2d37ec.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-954852857f2d37ec: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
