/root/repo/target/debug/deps/scalability-ff766ed38f60b34d.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-ff766ed38f60b34d: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
