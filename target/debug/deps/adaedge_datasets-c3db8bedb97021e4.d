/root/repo/target/debug/deps/adaedge_datasets-c3db8bedb97021e4.d: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

/root/repo/target/debug/deps/libadaedge_datasets-c3db8bedb97021e4.rlib: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

/root/repo/target/debug/deps/libadaedge_datasets-c3db8bedb97021e4.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs

crates/datasets/src/lib.rs:
crates/datasets/src/cbf.rs:
crates/datasets/src/rng.rs:
crates/datasets/src/stream.rs:
crates/datasets/src/synthetic.rs:
