/root/repo/target/debug/deps/adaedge-0e8302801ef91c01.d: src/bin/adaedge.rs

/root/repo/target/debug/deps/adaedge-0e8302801ef91c01: src/bin/adaedge.rs

src/bin/adaedge.rs:
