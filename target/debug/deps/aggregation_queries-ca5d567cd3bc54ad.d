/root/repo/target/debug/deps/aggregation_queries-ca5d567cd3bc54ad.d: tests/aggregation_queries.rs

/root/repo/target/debug/deps/aggregation_queries-ca5d567cd3bc54ad: tests/aggregation_queries.rs

tests/aggregation_queries.rs:
