/root/repo/target/debug/deps/fig09_max_query-156cc7fdb23ad806.d: crates/bench/src/bin/fig09_max_query.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_max_query-156cc7fdb23ad806.rmeta: crates/bench/src/bin/fig09_max_query.rs Cargo.toml

crates/bench/src/bin/fig09_max_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
