/root/repo/target/debug/deps/golden_wire_format-1f353abaf4c27780.d: crates/codecs/tests/golden_wire_format.rs

/root/repo/target/debug/deps/golden_wire_format-1f353abaf4c27780: crates/codecs/tests/golden_wire_format.rs

crates/codecs/tests/golden_wire_format.rs:
