/root/repo/target/debug/deps/fig11_complex_speed_ml-70a2ae56fa888830.d: crates/bench/src/bin/fig11_complex_speed_ml.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_complex_speed_ml-70a2ae56fa888830.rmeta: crates/bench/src/bin/fig11_complex_speed_ml.rs Cargo.toml

crates/bench/src/bin/fig11_complex_speed_ml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
