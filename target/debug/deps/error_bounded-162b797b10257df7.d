/root/repo/target/debug/deps/error_bounded-162b797b10257df7.d: tests/error_bounded.rs

/root/repo/target/debug/deps/error_bounded-162b797b10257df7: tests/error_bounded.rs

tests/error_bounded.rs:
