/root/repo/target/debug/deps/cli-3a133d839a17e56c.d: tests/cli.rs

/root/repo/target/debug/deps/cli-3a133d839a17e56c: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_adaedge=/root/repo/target/debug/adaedge
