/root/repo/target/debug/deps/fig09_max_query-396136d0ca5b6229.d: crates/bench/src/bin/fig09_max_query.rs

/root/repo/target/debug/deps/fig09_max_query-396136d0ca5b6229: crates/bench/src/bin/fig09_max_query.rs

crates/bench/src/bin/fig09_max_query.rs:
