/root/repo/target/debug/deps/fig03_egress_rate-b6ab77ed4a1a217c.d: crates/bench/src/bin/fig03_egress_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_egress_rate-b6ab77ed4a1a217c.rmeta: crates/bench/src/bin/fig03_egress_rate.rs Cargo.toml

crates/bench/src/bin/fig03_egress_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
