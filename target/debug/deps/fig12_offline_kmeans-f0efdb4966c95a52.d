/root/repo/target/debug/deps/fig12_offline_kmeans-f0efdb4966c95a52.d: crates/bench/src/bin/fig12_offline_kmeans.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_offline_kmeans-f0efdb4966c95a52.rmeta: crates/bench/src/bin/fig12_offline_kmeans.rs Cargo.toml

crates/bench/src/bin/fig12_offline_kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
