/root/repo/target/debug/deps/adaedge-9cc956bf15d95871.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge-9cc956bf15d95871.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
