/root/repo/target/debug/deps/fig04_cascade-bbe2732e57bd8efb.d: crates/bench/src/bin/fig04_cascade.rs

/root/repo/target/debug/deps/fig04_cascade-bbe2732e57bd8efb: crates/bench/src/bin/fig04_cascade.rs

crates/bench/src/bin/fig04_cascade.rs:
