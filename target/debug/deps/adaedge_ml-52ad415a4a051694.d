/root/repo/target/debug/deps/adaedge_ml-52ad415a4a051694.d: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge_ml-52ad415a4a051694.rmeta: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/data.rs:
crates/ml/src/dtree.rs:
crates/ml/src/forest.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/metrics.rs:
crates/ml/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
