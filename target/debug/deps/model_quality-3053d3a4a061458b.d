/root/repo/target/debug/deps/model_quality-3053d3a4a061458b.d: crates/ml/tests/model_quality.rs

/root/repo/target/debug/deps/model_quality-3053d3a4a061458b: crates/ml/tests/model_quality.rs

crates/ml/tests/model_quality.rs:
