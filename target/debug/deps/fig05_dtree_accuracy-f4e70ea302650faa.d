/root/repo/target/debug/deps/fig05_dtree_accuracy-f4e70ea302650faa.d: crates/bench/src/bin/fig05_dtree_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_dtree_accuracy-f4e70ea302650faa.rmeta: crates/bench/src/bin/fig05_dtree_accuracy.rs Cargo.toml

crates/bench/src/bin/fig05_dtree_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
