/root/repo/target/debug/deps/dbg_offline-f10a4ada371517ff.d: crates/bench/src/bin/dbg_offline.rs

/root/repo/target/debug/deps/dbg_offline-f10a4ada371517ff: crates/bench/src/bin/dbg_offline.rs

crates/bench/src/bin/dbg_offline.rs:
