/root/repo/target/debug/deps/adaedge_core-9df0646fc91c7a3a.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

/root/repo/target/debug/deps/adaedge_core-9df0646fc91c7a3a: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/constraints.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/query.rs:
crates/core/src/selector.rs:
crates/core/src/targets.rs:
