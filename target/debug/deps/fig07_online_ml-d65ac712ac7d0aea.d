/root/repo/target/debug/deps/fig07_online_ml-d65ac712ac7d0aea.d: crates/bench/src/bin/fig07_online_ml.rs

/root/repo/target/debug/deps/fig07_online_ml-d65ac712ac7d0aea: crates/bench/src/bin/fig07_online_ml.rs

crates/bench/src/bin/fig07_online_ml.rs:
