/root/repo/target/debug/deps/fig03_egress_rate-e26b172d854b0784.d: crates/bench/src/bin/fig03_egress_rate.rs

/root/repo/target/debug/deps/fig03_egress_rate-e26b172d854b0784: crates/bench/src/bin/fig03_egress_rate.rs

crates/bench/src/bin/fig03_egress_rate.rs:
