/root/repo/target/debug/deps/fig10_complex_agg_ml-698bb95728294bee.d: crates/bench/src/bin/fig10_complex_agg_ml.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_complex_agg_ml-698bb95728294bee.rmeta: crates/bench/src/bin/fig10_complex_agg_ml.rs Cargo.toml

crates/bench/src/bin/fig10_complex_agg_ml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
