/root/repo/target/debug/deps/fig06_rforest_accuracy-9465ed66dfc58cce.d: crates/bench/src/bin/fig06_rforest_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_rforest_accuracy-9465ed66dfc58cce.rmeta: crates/bench/src/bin/fig06_rforest_accuracy.rs Cargo.toml

crates/bench/src/bin/fig06_rforest_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
