/root/repo/target/debug/deps/adaedge-f2e9753a0260f6ac.d: src/bin/adaedge.rs

/root/repo/target/debug/deps/adaedge-f2e9753a0260f6ac: src/bin/adaedge.rs

src/bin/adaedge.rs:
