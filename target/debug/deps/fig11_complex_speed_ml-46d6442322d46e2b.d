/root/repo/target/debug/deps/fig11_complex_speed_ml-46d6442322d46e2b.d: crates/bench/src/bin/fig11_complex_speed_ml.rs

/root/repo/target/debug/deps/fig11_complex_speed_ml-46d6442322d46e2b: crates/bench/src/bin/fig11_complex_speed_ml.rs

crates/bench/src/bin/fig11_complex_speed_ml.rs:
