/root/repo/target/debug/deps/adaedge_codecs-50a742c27eca2344.d: crates/codecs/src/lib.rs crates/codecs/src/bitio.rs crates/codecs/src/block.rs crates/codecs/src/buff.rs crates/codecs/src/chimp.rs crates/codecs/src/deflate.rs crates/codecs/src/dict.rs crates/codecs/src/direct.rs crates/codecs/src/elf.rs crates/codecs/src/error.rs crates/codecs/src/fft.rs crates/codecs/src/gorilla.rs crates/codecs/src/huffman.rs crates/codecs/src/lttb.rs crates/codecs/src/lz.rs crates/codecs/src/paa.rs crates/codecs/src/pla.rs crates/codecs/src/raw.rs crates/codecs/src/registry.rs crates/codecs/src/rle.rs crates/codecs/src/rrd.rs crates/codecs/src/snappy.rs crates/codecs/src/sprintz.rs crates/codecs/src/traits.rs crates/codecs/src/util.rs

/root/repo/target/debug/deps/libadaedge_codecs-50a742c27eca2344.rlib: crates/codecs/src/lib.rs crates/codecs/src/bitio.rs crates/codecs/src/block.rs crates/codecs/src/buff.rs crates/codecs/src/chimp.rs crates/codecs/src/deflate.rs crates/codecs/src/dict.rs crates/codecs/src/direct.rs crates/codecs/src/elf.rs crates/codecs/src/error.rs crates/codecs/src/fft.rs crates/codecs/src/gorilla.rs crates/codecs/src/huffman.rs crates/codecs/src/lttb.rs crates/codecs/src/lz.rs crates/codecs/src/paa.rs crates/codecs/src/pla.rs crates/codecs/src/raw.rs crates/codecs/src/registry.rs crates/codecs/src/rle.rs crates/codecs/src/rrd.rs crates/codecs/src/snappy.rs crates/codecs/src/sprintz.rs crates/codecs/src/traits.rs crates/codecs/src/util.rs

/root/repo/target/debug/deps/libadaedge_codecs-50a742c27eca2344.rmeta: crates/codecs/src/lib.rs crates/codecs/src/bitio.rs crates/codecs/src/block.rs crates/codecs/src/buff.rs crates/codecs/src/chimp.rs crates/codecs/src/deflate.rs crates/codecs/src/dict.rs crates/codecs/src/direct.rs crates/codecs/src/elf.rs crates/codecs/src/error.rs crates/codecs/src/fft.rs crates/codecs/src/gorilla.rs crates/codecs/src/huffman.rs crates/codecs/src/lttb.rs crates/codecs/src/lz.rs crates/codecs/src/paa.rs crates/codecs/src/pla.rs crates/codecs/src/raw.rs crates/codecs/src/registry.rs crates/codecs/src/rle.rs crates/codecs/src/rrd.rs crates/codecs/src/snappy.rs crates/codecs/src/sprintz.rs crates/codecs/src/traits.rs crates/codecs/src/util.rs

crates/codecs/src/lib.rs:
crates/codecs/src/bitio.rs:
crates/codecs/src/block.rs:
crates/codecs/src/buff.rs:
crates/codecs/src/chimp.rs:
crates/codecs/src/deflate.rs:
crates/codecs/src/dict.rs:
crates/codecs/src/direct.rs:
crates/codecs/src/elf.rs:
crates/codecs/src/error.rs:
crates/codecs/src/fft.rs:
crates/codecs/src/gorilla.rs:
crates/codecs/src/huffman.rs:
crates/codecs/src/lttb.rs:
crates/codecs/src/lz.rs:
crates/codecs/src/paa.rs:
crates/codecs/src/pla.rs:
crates/codecs/src/raw.rs:
crates/codecs/src/registry.rs:
crates/codecs/src/rle.rs:
crates/codecs/src/rrd.rs:
crates/codecs/src/snappy.rs:
crates/codecs/src/sprintz.rs:
crates/codecs/src/traits.rs:
crates/codecs/src/util.rs:
