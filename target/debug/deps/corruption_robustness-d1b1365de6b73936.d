/root/repo/target/debug/deps/corruption_robustness-d1b1365de6b73936.d: tests/corruption_robustness.rs

/root/repo/target/debug/deps/corruption_robustness-d1b1365de6b73936: tests/corruption_robustness.rs

tests/corruption_robustness.rs:
