/root/repo/target/debug/deps/adaedge_core-384b69ad954e496a.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge_core-384b69ad954e496a.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/constraints.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/query.rs:
crates/core/src/selector.rs:
crates/core/src/targets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
