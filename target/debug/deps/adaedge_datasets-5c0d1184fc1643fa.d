/root/repo/target/debug/deps/adaedge_datasets-5c0d1184fc1643fa.d: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge_datasets-5c0d1184fc1643fa.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cbf.rs crates/datasets/src/rng.rs crates/datasets/src/stream.rs crates/datasets/src/synthetic.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/cbf.rs:
crates/datasets/src/rng.rs:
crates/datasets/src/stream.rs:
crates/datasets/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
