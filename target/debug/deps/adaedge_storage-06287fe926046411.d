/root/repo/target/debug/deps/adaedge_storage-06287fe926046411.d: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge_storage-06287fe926046411.rmeta: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/persist.rs:
crates/storage/src/policy.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
