/root/repo/target/debug/deps/adaedge_bandit-b67c425522802c2b.d: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs Cargo.toml

/root/repo/target/debug/deps/libadaedge_bandit-b67c425522802c2b.rmeta: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs Cargo.toml

crates/bandit/src/lib.rs:
crates/bandit/src/banded.rs:
crates/bandit/src/egreedy.rs:
crates/bandit/src/gradient.rs:
crates/bandit/src/normalize.rs:
crates/bandit/src/policy.rs:
crates/bandit/src/ucb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
