/root/repo/target/debug/deps/adaedge_bench-73d9d039230b85af.d: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

/root/repo/target/debug/deps/adaedge_bench-73d9d039230b85af: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

crates/bench/src/lib.rs:
crates/bench/src/agg_figure.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
