/root/repo/target/debug/deps/criterion-a54d43a8971d135b.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a54d43a8971d135b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a54d43a8971d135b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
