/root/repo/target/debug/deps/properties-6566f9962b0de239.d: crates/storage/tests/properties.rs

/root/repo/target/debug/deps/properties-6566f9962b0de239: crates/storage/tests/properties.rs

crates/storage/tests/properties.rs:
