/root/repo/target/debug/deps/adaedge_storage-3c3a63769a16717d.d: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/debug/deps/adaedge_storage-3c3a63769a16717d: crates/storage/src/lib.rs crates/storage/src/persist.rs crates/storage/src/policy.rs crates/storage/src/segment.rs crates/storage/src/store.rs

crates/storage/src/lib.rs:
crates/storage/src/persist.rs:
crates/storage/src/policy.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
