/root/repo/target/debug/deps/adaedge_ml-b28891b3aae43972.d: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs

/root/repo/target/debug/deps/adaedge_ml-b28891b3aae43972: crates/ml/src/lib.rs crates/ml/src/data.rs crates/ml/src/dtree.rs crates/ml/src/forest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/model.rs

crates/ml/src/lib.rs:
crates/ml/src/data.rs:
crates/ml/src/dtree.rs:
crates/ml/src/forest.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/metrics.rs:
crates/ml/src/model.rs:
