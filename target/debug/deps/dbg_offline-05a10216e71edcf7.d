/root/repo/target/debug/deps/dbg_offline-05a10216e71edcf7.d: crates/bench/src/bin/dbg_offline.rs Cargo.toml

/root/repo/target/debug/deps/libdbg_offline-05a10216e71edcf7.rmeta: crates/bench/src/bin/dbg_offline.rs Cargo.toml

crates/bench/src/bin/dbg_offline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
