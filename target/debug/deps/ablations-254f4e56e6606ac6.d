/root/repo/target/debug/deps/ablations-254f4e56e6606ac6.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-254f4e56e6606ac6: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
