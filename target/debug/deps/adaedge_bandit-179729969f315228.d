/root/repo/target/debug/deps/adaedge_bandit-179729969f315228.d: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs

/root/repo/target/debug/deps/adaedge_bandit-179729969f315228: crates/bandit/src/lib.rs crates/bandit/src/banded.rs crates/bandit/src/egreedy.rs crates/bandit/src/gradient.rs crates/bandit/src/normalize.rs crates/bandit/src/policy.rs crates/bandit/src/ucb.rs

crates/bandit/src/lib.rs:
crates/bandit/src/banded.rs:
crates/bandit/src/egreedy.rs:
crates/bandit/src/gradient.rs:
crates/bandit/src/normalize.rs:
crates/bandit/src/policy.rs:
crates/bandit/src/ucb.rs:
