/root/repo/target/debug/deps/fig02_ingest_rate-38e83b9f745f7c3b.d: crates/bench/src/bin/fig02_ingest_rate.rs

/root/repo/target/debug/deps/fig02_ingest_rate-38e83b9f745f7c3b: crates/bench/src/bin/fig02_ingest_rate.rs

crates/bench/src/bin/fig02_ingest_rate.rs:
