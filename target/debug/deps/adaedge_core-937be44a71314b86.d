/root/repo/target/debug/deps/adaedge_core-937be44a71314b86.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

/root/repo/target/debug/deps/libadaedge_core-937be44a71314b86.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

/root/repo/target/debug/deps/libadaedge_core-937be44a71314b86.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/constraints.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/offline.rs crates/core/src/online.rs crates/core/src/query.rs crates/core/src/selector.rs crates/core/src/targets.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/constraints.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/offline.rs:
crates/core/src/online.rs:
crates/core/src/query.rs:
crates/core/src/selector.rs:
crates/core/src/targets.rs:
