/root/repo/target/debug/deps/codec_properties-917bd01acdedafe1.d: tests/codec_properties.rs

/root/repo/target/debug/deps/codec_properties-917bd01acdedafe1: tests/codec_properties.rs

tests/codec_properties.rs:
