/root/repo/target/debug/deps/fig08_sum_query-6a152f2ce9cea45a.d: crates/bench/src/bin/fig08_sum_query.rs

/root/repo/target/debug/deps/fig08_sum_query-6a152f2ce9cea45a: crates/bench/src/bin/fig08_sum_query.rs

crates/bench/src/bin/fig08_sum_query.rs:
