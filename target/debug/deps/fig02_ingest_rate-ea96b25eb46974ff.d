/root/repo/target/debug/deps/fig02_ingest_rate-ea96b25eb46974ff.d: crates/bench/src/bin/fig02_ingest_rate.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_ingest_rate-ea96b25eb46974ff.rmeta: crates/bench/src/bin/fig02_ingest_rate.rs Cargo.toml

crates/bench/src/bin/fig02_ingest_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
