/root/repo/target/debug/deps/fig06_rforest_accuracy-8391845910b841bf.d: crates/bench/src/bin/fig06_rforest_accuracy.rs

/root/repo/target/debug/deps/fig06_rforest_accuracy-8391845910b841bf: crates/bench/src/bin/fig06_rforest_accuracy.rs

crates/bench/src/bin/fig06_rforest_accuracy.rs:
