/root/repo/target/debug/deps/adaedge_bench-9cccbfb8161c1351.d: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

/root/repo/target/debug/deps/libadaedge_bench-9cccbfb8161c1351.rlib: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

/root/repo/target/debug/deps/libadaedge_bench-9cccbfb8161c1351.rmeta: crates/bench/src/lib.rs crates/bench/src/agg_figure.rs crates/bench/src/harness.rs crates/bench/src/setup.rs

crates/bench/src/lib.rs:
crates/bench/src/agg_figure.rs:
crates/bench/src/harness.rs:
crates/bench/src/setup.rs:
