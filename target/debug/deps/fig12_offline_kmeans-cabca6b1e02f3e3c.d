/root/repo/target/debug/deps/fig12_offline_kmeans-cabca6b1e02f3e3c.d: crates/bench/src/bin/fig12_offline_kmeans.rs

/root/repo/target/debug/deps/fig12_offline_kmeans-cabca6b1e02f3e3c: crates/bench/src/bin/fig12_offline_kmeans.rs

crates/bench/src/bin/fig12_offline_kmeans.rs:
