/root/repo/target/debug/examples/intermittent_link-5963f19b281c0921.d: examples/intermittent_link.rs

/root/repo/target/debug/examples/intermittent_link-5963f19b281c0921: examples/intermittent_link.rs

examples/intermittent_link.rs:
