/root/repo/target/debug/examples/oil_platform-b879a92b5fdf5c12.d: examples/oil_platform.rs

/root/repo/target/debug/examples/oil_platform-b879a92b5fdf5c12: examples/oil_platform.rs

examples/oil_platform.rs:
