/root/repo/target/debug/examples/quickstart-6a6a7220363cf4d0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6a6a7220363cf4d0: examples/quickstart.rs

examples/quickstart.rs:
