/root/repo/target/debug/examples/offshore_logger-7cb5e56b1febd9cd.d: examples/offshore_logger.rs

/root/repo/target/debug/examples/offshore_logger-7cb5e56b1febd9cd: examples/offshore_logger.rs

examples/offshore_logger.rs:
