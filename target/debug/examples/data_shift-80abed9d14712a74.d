/root/repo/target/debug/examples/data_shift-80abed9d14712a74.d: examples/data_shift.rs

/root/repo/target/debug/examples/data_shift-80abed9d14712a74: examples/data_shift.rs

examples/data_shift.rs:
