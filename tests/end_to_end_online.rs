//! End-to-end online-mode tests across crates: datasets → core → codecs →
//! ml, checking the headline behaviours the paper claims.

use adaedge::core::{
    AggKind, Constraints, OnlineAdaEdge, OnlineConfig, OptimizationTarget, Path, RewardEvaluator,
    TargetComponent,
};
use adaedge::datasets::{CbfConfig, CbfGenerator, CbfStream, SegmentSource};
use adaedge::ml::{Dataset, Model, TreeConfig};

const SEGMENT: usize = 1024;
const INSTANCE: usize = 128;

fn constraints_for_ratio(ratio: f64) -> Constraints {
    Constraints::online(100_000.0, ratio * 64.0 * 100_000.0, SEGMENT)
}

fn frozen_dtree() -> Model {
    let mut gen = CbfGenerator::new(CbfConfig {
        seed: 17,
        ..Default::default()
    });
    let (rows, labels) = gen.dataset(40);
    Model::train_dtree(&Dataset::new(rows, labels), TreeConfig::default())
}

#[test]
fn ml_target_online_pipeline_keeps_accuracy_high() {
    let model = frozen_dtree();
    let mut config = OnlineConfig::new(constraints_for_ratio(0.15), OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE;
    let mut edge = OnlineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);

    let eval = RewardEvaluator::new(OptimizationTarget::ml(), Some(model), INSTANCE);
    let mut accs = Vec::new();
    for _ in 0..60 {
        let segment = stream.next_segment();
        let out = edge.process_segment(&segment).unwrap();
        assert!(out.selection.block.ratio() <= 0.15 + 1e-9);
        let rec = edge.registry().decompress(&out.selection.block).unwrap();
        accs.push(eval.ml_accuracy(&segment, &rec));
    }
    // Late-phase accuracy (post-MAB-warmup) should be high at ratio 0.15.
    let late = &accs[30..];
    let mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!(mean > 0.85, "late-phase ML accuracy {mean}");
}

#[test]
fn lossless_region_has_zero_loss() {
    // At a generous ratio the pipeline stays lossless and reconstruction is
    // exact at dataset precision — the "zero accuracy loss" region of Fig 7.
    let mut config = OnlineConfig::new(
        constraints_for_ratio(0.5),
        OptimizationTarget::agg(AggKind::Sum),
    );
    config.precision = 4;
    let mut edge = OnlineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    for i in 0..30 {
        let segment = stream.next_segment();
        let out = edge.process_segment(&segment).unwrap();
        if i >= 15 {
            assert_eq!(out.path, Path::Lossless, "segment {i}");
            let rec = edge.registry().decompress(&out.selection.block).unwrap();
            let sum_orig: f64 = segment.iter().sum();
            let sum_rec: f64 = rec.iter().sum();
            assert!((sum_orig - sum_rec).abs() < 1e-6);
        }
    }
}

#[test]
fn complex_target_weights_are_honoured() {
    // w1·AccSum + w2·AccML (Figure 10's weighting).
    let model = frozen_dtree();
    let target = OptimizationTarget::complex(vec![
        (0.625, TargetComponent::AggAccuracy(AggKind::Sum)),
        (0.375, TargetComponent::MlAccuracy),
    ]);
    let mut config = OnlineConfig::new(constraints_for_ratio(0.1), target);
    config.model = Some(model);
    config.instance_len = INSTANCE;
    let mut edge = OnlineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    let mut rewards = Vec::new();
    for _ in 0..50 {
        let segment = stream.next_segment();
        let out = edge.process_segment(&segment).unwrap();
        if out.path == Path::Lossy {
            rewards.push(out.selection.reward);
        }
    }
    assert!(!rewards.is_empty());
    let late_mean = rewards[rewards.len() / 2..].iter().sum::<f64>()
        / (rewards.len() - rewards.len() / 2) as f64;
    assert!(late_mean > 0.8, "complex-target reward {late_mean}");
}

#[test]
fn bandwidth_accounting_respects_link() {
    let mut config = OnlineConfig::new(
        constraints_for_ratio(0.1),
        OptimizationTarget::agg(AggKind::Sum),
    );
    config.precision = 4;
    let mut edge = OnlineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    for _ in 0..60 {
        let segment = stream.next_segment();
        edge.process_segment(&segment).unwrap();
    }
    let stats = edge.stats();
    // After warm-up the shipped volume must sit well under the raw volume;
    // allow slack for the initial lossless probes.
    assert!(
        (stats.bytes_out as f64) < 0.25 * stats.bytes_in as f64,
        "egress {} of {}",
        stats.bytes_out,
        stats.bytes_in
    );
    assert_eq!(stats.segments, 60);
    assert_eq!(
        stats.lossless_segments + stats.lossy_segments,
        stats.segments
    );
}
