//! Cross-crate aggregation-query tests: querying the offline store returns
//! values consistent with the §IV-D2 accuracy definitions, and the
//! per-codec accuracy ordering claimed by the paper holds on real streams.

use adaedge::codecs::{CodecId, CodecRegistry};
use adaedge::core::{AggKind, OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge::ml::metrics::agg_accuracy;

fn segments(n: usize) -> Vec<Vec<f64>> {
    let mut s = CbfStream::new(CbfConfig::default(), 1024);
    (0..n).map(|_| s.next_segment()).collect()
}

#[test]
fn paa_beats_pla_on_sum_and_loses_on_max() {
    // The core codec-vs-query interaction behind Figures 8 and 9.
    let reg = CodecRegistry::new(4);
    let paa = reg.get_lossy(CodecId::Paa).unwrap();
    let pla = reg.get_lossy(CodecId::Pla).unwrap();
    let mut paa_sum = 0.0;
    let mut pla_sum = 0.0;
    let mut paa_max = 0.0;
    let mut pla_max = 0.0;
    let segs = segments(20);
    for seg in &segs {
        let paa_rec = reg
            .decompress(&paa.compress_to_ratio(seg, 0.1).unwrap())
            .unwrap();
        let pla_rec = reg
            .decompress(&pla.compress_to_ratio(seg, 0.1).unwrap())
            .unwrap();
        paa_sum += agg_accuracy(AggKind::Sum.eval(seg), AggKind::Sum.eval(&paa_rec));
        pla_sum += agg_accuracy(AggKind::Sum.eval(seg), AggKind::Sum.eval(&pla_rec));
        paa_max += agg_accuracy(AggKind::Max.eval(seg), AggKind::Max.eval(&paa_rec));
        pla_max += agg_accuracy(AggKind::Max.eval(seg), AggKind::Max.eval(&pla_rec));
    }
    let n = segs.len() as f64;
    assert!(
        paa_sum / n > pla_sum / n,
        "PAA should win SUM: {} vs {}",
        paa_sum / n,
        pla_sum / n
    );
    assert!(
        pla_max / n > paa_max / n,
        "PLA should win MAX: {} vs {}",
        pla_max / n,
        paa_max / n
    );
}

#[test]
fn fft_preserves_sum_to_near_machine_precision() {
    let reg = CodecRegistry::new(4);
    let fft = reg.get_lossy(CodecId::Fft).unwrap();
    for seg in segments(10) {
        let rec = reg
            .decompress(&fft.compress_to_ratio(&seg, 0.05).unwrap())
            .unwrap();
        let acc = agg_accuracy(AggKind::Sum.eval(&seg), AggKind::Sum.eval(&rec));
        assert!(1.0 - acc < 1e-8, "FFT sum loss {}", 1.0 - acc);
    }
}

#[test]
fn offline_store_queries_remain_accurate_for_sum() {
    // End-to-end: ingest under pressure with a SUM target, query the whole
    // store, compare to the true running sum.
    let mut config = OfflineConfig::new(300_000, OptimizationTarget::agg(AggKind::Sum));
    config.precision = 4;
    let mut edge = OfflineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), 1024);
    let mut true_sum = 0.0;
    let mut ids = Vec::new();
    for _ in 0..200 {
        let seg = stream.next_segment();
        true_sum += AggKind::Sum.eval(&seg);
        ids.push(edge.ingest(&seg).unwrap().id);
    }
    assert!(edge.total_recodes() > 0, "pressure must trigger recoding");
    let mut lossy_sum = 0.0;
    for id in ids {
        lossy_sum += AggKind::Sum.eval(&edge.query_segment(id).unwrap());
    }
    let acc = agg_accuracy(true_sum, lossy_sum);
    // The MAB optimizes SUM accuracy, so the global SUM barely moves even
    // though the store holds ~4x less than the raw data.
    assert!(acc > 0.999, "sum accuracy {acc}");
}

#[test]
fn avg_and_min_queries_consistent_across_segments() {
    let segs = segments(5);
    let flat: Vec<f64> = segs.iter().flatten().copied().collect();
    let by_seg_avg = AggKind::Avg.eval_segments(segs.iter().map(|s| s.as_slice()));
    let by_seg_min = AggKind::Min.eval_segments(segs.iter().map(|s| s.as_slice()));
    assert!((by_seg_avg - AggKind::Avg.eval(&flat)).abs() < 1e-12);
    assert_eq!(by_seg_min, AggKind::Min.eval(&flat));
}
