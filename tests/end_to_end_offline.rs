//! End-to-end offline-mode tests: the recoding cascade under a hard
//! budget, MAB vs fixed-pair baselines, and the CodecDB failure mode.

use adaedge::codecs::{CodecId, CodecRegistry};
use adaedge::core::baselines::{CodecDbBaseline, FixedPair};
use adaedge::core::{OfflineAdaEdge, OfflineConfig, OptimizationTarget, PolicyKind};
use adaedge::datasets::{CbfConfig, CbfGenerator, CbfStream, SegmentSource};
use adaedge::ml::{metrics, Dataset, KMeansConfig, Model};
use adaedge::storage::SegmentStore;

const SEGMENT: usize = 1024;
const INSTANCE: usize = 128;

fn kmeans_model() -> Model {
    let mut gen = CbfGenerator::new(CbfConfig {
        seed: 23,
        ..Default::default()
    });
    let (rows, _) = gen.dataset(40);
    Model::train_kmeans(
        &Dataset::unlabeled(rows),
        KMeansConfig {
            k: 3,
            ..Default::default()
        },
    )
}

fn offline_accuracy(edge: &OfflineAdaEdge, model: &Model) -> f64 {
    let mut orig_rows = Vec::new();
    let mut lossy_rows = Vec::new();
    for (_, rec, orig) in edge.reconstruct_all().unwrap() {
        let orig = orig.expect("originals kept");
        for (o, l) in orig.chunks_exact(INSTANCE).zip(rec.chunks_exact(INSTANCE)) {
            orig_rows.push(o.to_vec());
            lossy_rows.push(l.to_vec());
        }
    }
    metrics::ml_accuracy(model, &orig_rows, &lossy_rows)
}

#[test]
fn mab_cascade_stays_within_budget_and_keeps_accuracy() {
    let model = kmeans_model();
    let budget = 200 * 1024;
    let mut config = OfflineConfig::new(budget, OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE;
    let mut edge = OfflineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    for _ in 0..150 {
        let report = edge.ingest(&stream.next_segment()).unwrap();
        assert!(report.utilization <= 1.0 + 1e-9, "budget breached");
    }
    assert!(edge.total_recodes() > 0);
    assert_eq!(edge.store().len(), 150);
    let acc = offline_accuracy(&edge, &model);
    // ~6x overcommit: the MAB should keep most cluster assignments intact.
    assert!(acc > 0.7, "offline accuracy {acc}");
}

#[test]
fn mab_beats_a_poor_fixed_pair() {
    let model = kmeans_model();
    let budget = 160 * 1024;
    let n_segments = 120;

    // MAB pipeline.
    let mut config = OfflineConfig::new(budget, OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE;
    let mut mab = OfflineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    for _ in 0..n_segments {
        mab.ingest(&stream.next_segment()).unwrap();
    }
    let mab_acc = offline_accuracy(&mab, &model);

    // A deliberately poor fixed pair: snappy (weak lossless on floats) +
    // RRD-sample (crude lossy), hand-driven through the same cascade.
    let reg = CodecRegistry::new(4);
    let pair = FixedPair::new(CodecId::Snappy, CodecId::RrdSample);
    let mut store = SegmentStore::with_budget(budget);
    let mut originals = Vec::new();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    for _ in 0..n_segments {
        let data = stream.next_segment();
        let sel = pair.compress_lossless(&reg, &data).unwrap();
        let mut incoming = sel.block;
        // Make room: recode victims to half size until under 0.8 budget.
        loop {
            let projected = store.used_bytes() + incoming.compressed_bytes();
            if (projected as f64) <= 0.8 * budget as f64 {
                break;
            }
            let mut freed = false;
            for id in store.victim_order() {
                let seg = store.peek(id).unwrap();
                let target = seg.ratio() * 0.5;
                let block = seg.block().unwrap().clone();
                if let Ok(recoded) = pair.recode(&reg, &block, target) {
                    if recoded.block.compressed_bytes() < block.compressed_bytes() {
                        store.replace(id, recoded.block).unwrap();
                        freed = true;
                        break;
                    }
                }
            }
            if !freed {
                break;
            }
        }
        // Snappy can exceed ratio 1.0 on floats; if the put fails the pair
        // baseline has effectively failed, mirroring the paper's failures.
        if incoming.ratio() > 1.0 {
            incoming = reg.get(CodecId::Raw).compress(&data).unwrap();
        }
        store.put_compressed(incoming).unwrap();
        originals.push(data);
    }
    let mut orig_rows = Vec::new();
    let mut lossy_rows = Vec::new();
    for (id, orig) in store.ids().into_iter().zip(&originals) {
        let rec = reg
            .decompress(store.peek(id).unwrap().block().unwrap())
            .unwrap();
        for (o, l) in orig.chunks_exact(INSTANCE).zip(rec.chunks_exact(INSTANCE)) {
            orig_rows.push(o.to_vec());
            lossy_rows.push(l.to_vec());
        }
    }
    let pair_acc = metrics::ml_accuracy(&model, &orig_rows, &lossy_rows);

    assert!(
        mab_acc >= pair_acc,
        "MAB {mab_acc} should not lose to snappy_rrdsample {pair_acc}"
    );
}

#[test]
fn codecdb_baseline_fails_at_recode_time() {
    // CodecDB has no lossy path: once storage pressure demands ratios below
    // lossless reach, it cannot continue (Figure 12's "CodecDB fails").
    let reg = CodecRegistry::new(4);
    let mut db = CodecDbBaseline::new(CodecRegistry::lossless_candidates(), 1);
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    // Let it commit, then demand an impossible ratio.
    for _ in 0..12 {
        db.compress(&reg, &stream.next_segment()).unwrap();
    }
    assert!(db.committed().is_some());
    let err = db
        .compress_for_ratio(&reg, &stream.next_segment(), 0.05)
        .unwrap_err();
    assert!(matches!(
        err,
        adaedge::core::AdaEdgeError::NoFeasibleArm { .. }
    ));
}

#[test]
fn fifo_and_lru_policies_both_bound_space() {
    let model = kmeans_model();
    for policy in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::QueryCount] {
        let mut config = OfflineConfig::new(120 * 1024, OptimizationTarget::ml());
        config.model = Some(model.clone());
        config.instance_len = INSTANCE;
        config.policy = policy;
        let mut edge = OfflineAdaEdge::new(config).unwrap();
        let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
        for _ in 0..80 {
            let report = edge.ingest(&stream.next_segment()).unwrap();
            assert!(report.utilization <= 1.0 + 1e-9, "{policy:?}");
        }
        assert_eq!(edge.store().len(), 80, "{policy:?}");
    }
}

#[test]
fn lru_keeps_fresh_segments_lossless() {
    // "AdaEdge consistently delivers 100% accuracy for fresh segments"
    // (§V-B2): the most recent segments should still be losslessly stored.
    let model = kmeans_model();
    let mut config = OfflineConfig::new(150 * 1024, OptimizationTarget::ml());
    config.model = Some(model.clone());
    config.instance_len = INSTANCE;
    let mut edge = OfflineAdaEdge::new(config).unwrap();
    let mut stream = CbfStream::new(CbfConfig::default(), SEGMENT);
    let mut last_id = None;
    for _ in 0..100 {
        last_id = Some(edge.ingest(&stream.next_segment()).unwrap().id);
    }
    let freshest = edge.store().peek(last_id.unwrap()).unwrap();
    assert!(
        freshest.block().unwrap().codec.is_lossless(),
        "freshest segment was lossy-compressed: {:?}",
        freshest.block().unwrap().codec
    );
}
