//! End-to-end tests of the `adaedge` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adaedge"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("adaedge-cli-{name}-{}", std::process::id()));
    p
}

#[test]
fn compress_decompress_roundtrip() {
    let input = tmp("in.txt");
    let seg = tmp("out.seg");
    let output = tmp("out.txt");
    let values: Vec<f64> = (0..3000)
        .map(|i| ((i as f64 * 0.01).sin() * 1e4).round() / 1e4)
        .collect();
    let text: String = values.iter().map(|v| format!("{v}\n")).collect();
    std::fs::write(&input, text).unwrap();

    let status = bin()
        .args(["compress", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&seg)
        .args(["--precision", "4"])
        .status()
        .unwrap();
    assert!(status.success());
    assert!(seg.exists());

    let status = bin()
        .args(["decompress", "--input"])
        .arg(&seg)
        .arg("--output")
        .arg(&output)
        .args(["--precision", "4"])
        .status()
        .unwrap();
    assert!(status.success());

    let restored: Vec<f64> = std::fs::read_to_string(&output)
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(restored.len(), values.len());
    for (a, b) in values.iter().zip(&restored) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
    for p in [input, seg, output] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn fixed_lossy_codec_respects_ratio() {
    let input = tmp("lossy-in.txt");
    let seg = tmp("lossy.seg");
    let values: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.005).sin() * 3.0).collect();
    std::fs::write(
        &input,
        values.iter().map(|v| format!("{v}\n")).collect::<String>(),
    )
    .unwrap();
    let out = bin()
        .args(["compress", "--input"])
        .arg(&input)
        .arg("--output")
        .arg(&seg)
        .args(["--codec", "paa", "--ratio", "0.1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("paa"), "stdout: {stdout}");
    // 2048 values × 8 bytes = 16384 raw; ratio 0.1 → ≤ ~1700 bytes + file header.
    let file_len = std::fs::metadata(&seg).unwrap().len();
    assert!(file_len < 2300, "compressed file too big: {file_len}");
    for p in [input, seg] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn online_command_reports_stats() {
    let out = bin()
        .args(["online", "--segments", "20", "--target", "sum"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("target ratio"));
    assert!(stdout.contains("egress ratio"));
}

#[test]
fn offline_command_reports_utilization() {
    let out = bin()
        .args(["offline", "--segments", "60", "--budget", "200000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("utilization"));
    assert!(stdout.contains("recodes"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().args(["compress"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input is required"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["online", "--target", "median"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = bin().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
