//! Property-based tests over the codec layer: lossless roundtrips,
//! lossy ratio compliance, and recoding invariants, driven by proptest.

use adaedge::codecs::{util, CodecId, CodecRegistry};
use proptest::prelude::*;

/// Arbitrary finite, moderately sized signal values at 4-digit precision.
fn signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 1..max_len).prop_map(|mut v| {
        for x in v.iter_mut() {
            *x = util::round_to_precision(*x, 4);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lossless_arms_roundtrip(data in signal(600)) {
        let reg = CodecRegistry::new(4);
        for id in CodecRegistry::extended_lossless_candidates() {
            let block = reg.get(id).compress(&data).unwrap();
            let back = reg.decompress(&block).unwrap();
            prop_assert_eq!(back.len(), data.len());
            for (a, b) in data.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-9, "{}: {} vs {}", id, a, b);
            }
        }
    }

    #[test]
    fn lossy_arms_respect_ratio(data in signal(600), ratio in 0.02f64..1.0) {
        let reg = CodecRegistry::new(4);
        for id in CodecRegistry::lossy_candidates() {
            let lossy = reg.get_lossy(id).unwrap();
            match lossy.compress_to_ratio(&data, ratio) {
                Ok(block) => {
                    prop_assert!(
                        block.ratio() <= ratio + 1e-9,
                        "{}: {} > {}", id, block.ratio(), ratio
                    );
                    let back = reg.decompress(&block).unwrap();
                    prop_assert_eq!(back.len(), data.len());
                    for v in back {
                        prop_assert!(v.is_finite());
                    }
                }
                Err(adaedge::codecs::CodecError::RatioUnreachable { minimum, .. }) => {
                    // The floor must actually be above the request.
                    prop_assert!(minimum > ratio);
                }
                Err(e) => return Err(TestCaseError::fail(format!("{id}: {e}"))),
            }
        }
    }

    #[test]
    fn recode_tightens_every_codec(data in signal(600)) {
        let reg = CodecRegistry::new(4);
        let n = data.len();
        for id in CodecRegistry::lossy_candidates() {
            let lossy = reg.get_lossy(id).unwrap();
            let start = 0.5f64;
            let target = 0.2f64;
            if lossy.min_ratio(n) > target {
                continue; // too short a segment for this codec's floor
            }
            let Ok(block) = lossy.compress_to_ratio(&data, start) else { continue };
            if block.ratio() <= target {
                continue; // already below: nothing to recode
            }
            let recoded = reg.recode(&block, target).unwrap();
            prop_assert!(recoded.ratio() <= target + 1e-9, "{}", id);
            prop_assert_eq!(recoded.n_points, block.n_points);
            let back = reg.decompress(&recoded).unwrap();
            prop_assert_eq!(back.len(), n);
        }
    }

    #[test]
    fn quantize_dequantize_is_identity_at_precision(
        data in prop::collection::vec(-1e6f64..1e6, 1..200),
        precision in 0u8..7
    ) {
        let rounded: Vec<f64> = data
            .iter()
            .map(|&v| util::round_to_precision(v, precision))
            .collect();
        let q = util::quantize(&rounded, precision).unwrap();
        let back = util::dequantize(&q, precision).unwrap();
        for (a, b) in rounded.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn compressed_block_serde_roundtrip(data in signal(200)) {
        let reg = CodecRegistry::new(4);
        let block = reg.get(CodecId::Sprintz).compress(&data).unwrap();
        let json = serde_json::to_string(&block).unwrap();
        let back: adaedge::codecs::CompressedBlock = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &block);
        prop_assert_eq!(reg.decompress(&back).unwrap().len(), data.len());
    }
}
