//! Robustness against corrupt inputs: feeding arbitrary bytes, truncated
//! payloads and bit-flipped payloads to every decoder must return an error
//! or a (harmless) wrong decode — never panic. An edge device decoding
//! from flaky storage cannot afford to crash.

use adaedge::codecs::{CodecId, CodecRegistry, CompressedBlock};
use proptest::prelude::*;

fn smooth(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.013).sin() * 3.0 * 1e4).round() / 1e4)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        n_points in 0u32..4096,
    ) {
        let reg = CodecRegistry::new(4);
        for codec in CodecId::ALL {
            let block = CompressedBlock {
                codec,
                n_points,
                payload: payload.clone(),
            };
            // Err or Ok are both acceptable; panics are not.
            let _ = reg.decompress(&block);
        }
    }

    #[test]
    fn bit_flips_never_panic(
        flip_byte in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let reg = CodecRegistry::new(4);
        let data = smooth(300);
        for codec in CodecId::ALL {
            let block = match reg.get(codec) {
                c if c.kind() == adaedge::codecs::CodecKind::Lossless => {
                    c.compress(&data).unwrap()
                }
                _ => match reg.get_lossy(codec) {
                    Some(l) => match l.compress_to_ratio(&data, 0.3) {
                        Ok(b) => b,
                        Err(_) => continue,
                    },
                    None => continue,
                },
            };
            let mut corrupted = block.clone();
            if corrupted.payload.is_empty() {
                continue;
            }
            let idx = flip_byte % corrupted.payload.len();
            corrupted.payload[idx] ^= 1 << flip_bit;
            let _ = reg.decompress(&corrupted);
        }
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..10_000) {
        let reg = CodecRegistry::new(4);
        let data = smooth(300);
        for codec in CodecId::ALL {
            let block = match reg.get_lossy(codec) {
                Some(l) => match l.compress_to_ratio(&data, 0.3) {
                    Ok(b) => b,
                    Err(_) => continue,
                },
                None => match reg.get(codec).compress(&data) {
                    Ok(b) => b,
                    Err(_) => continue,
                },
            };
            let mut corrupted = block.clone();
            let new_len = cut % (corrupted.payload.len() + 1);
            corrupted.payload.truncate(new_len);
            let _ = reg.decompress(&corrupted);
        }
    }

    #[test]
    fn recode_on_corrupt_blocks_never_panics(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        n_points in 1u32..2048,
        ratio in 0.01f64..0.9,
    ) {
        let reg = CodecRegistry::new(4);
        for codec in [CodecId::Paa, CodecId::Pla, CodecId::Fft, CodecId::BuffLossy, CodecId::RrdSample, CodecId::Lttb] {
            let block = CompressedBlock {
                codec,
                n_points,
                payload: payload.clone(),
            };
            let _ = reg.recode(&block, ratio);
        }
    }
}
