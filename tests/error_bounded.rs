//! The ModelarDB-style error-bounded interface: every reconstructed point
//! must deviate from its original by at most the requested bound.

use adaedge::codecs::{CodecId, CodecRegistry};
use proptest::prelude::*;

fn max_abs_dev(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn smooth(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.021).sin() * 4.0 * 1e4).round() / 1e4)
        .collect()
}

const BOUNDED: [CodecId; 3] = [CodecId::Paa, CodecId::Pla, CodecId::BuffLossy];

#[test]
fn bound_holds_for_all_supporting_codecs() {
    let reg = CodecRegistry::new(4);
    let data = smooth(1000);
    for id in BOUNDED {
        let lossy = reg.get_lossy(id).unwrap();
        for eps in [1.0, 0.25, 0.05, 0.01] {
            let block = lossy.compress_with_error_bound(&data, eps).unwrap();
            let rec = reg.decompress(&block).unwrap();
            let dev = max_abs_dev(&data, &rec);
            assert!(dev <= eps + 1e-9, "{id} eps={eps}: max dev {dev}");
        }
    }
}

#[test]
fn tighter_bounds_cost_more_space() {
    let reg = CodecRegistry::new(4);
    let data = smooth(1000);
    for id in BOUNDED {
        let lossy = reg.get_lossy(id).unwrap();
        let loose = lossy.compress_with_error_bound(&data, 1.0).unwrap();
        let tight = lossy.compress_with_error_bound(&data, 0.01).unwrap();
        assert!(
            tight.compressed_bytes() >= loose.compressed_bytes(),
            "{id}: tight {} < loose {}",
            tight.compressed_bytes(),
            loose.compressed_bytes()
        );
    }
}

#[test]
fn unsupported_codecs_report_cleanly() {
    let reg = CodecRegistry::new(4);
    let data = smooth(100);
    for id in [CodecId::Fft, CodecId::RrdSample, CodecId::Lttb] {
        let err = reg
            .get_lossy(id)
            .unwrap()
            .compress_with_error_bound(&data, 0.1)
            .unwrap_err();
        assert!(matches!(
            err,
            adaedge::codecs::CodecError::RecodeUnsupported(_)
        ));
    }
}

#[test]
fn invalid_bounds_rejected() {
    let reg = CodecRegistry::new(4);
    let data = smooth(50);
    for id in BOUNDED {
        let lossy = reg.get_lossy(id).unwrap();
        assert!(lossy.compress_with_error_bound(&data, 0.0).is_err());
        assert!(lossy.compress_with_error_bound(&data, -1.0).is_err());
        assert!(lossy.compress_with_error_bound(&[], 0.1).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bound_holds_on_arbitrary_signals(
        data in prop::collection::vec(-100.0f64..100.0, 2..400),
        eps in 0.01f64..2.0,
    ) {
        let data: Vec<f64> = data
            .iter()
            .map(|v| (v * 1e4).round() / 1e4)
            .collect();
        let reg = CodecRegistry::new(4);
        for id in BOUNDED {
            let lossy = reg.get_lossy(id).unwrap();
            let block = lossy.compress_with_error_bound(&data, eps).unwrap();
            let rec = reg.decompress(&block).unwrap();
            prop_assert!(
                max_abs_dev(&data, &rec) <= eps + 1e-9,
                "{}: dev {} > {}", id, max_abs_dev(&data, &rec), eps
            );
        }
    }
}
