//! Tier-1 gate for the store-and-forward subsystem: a fast end-to-end
//! disconnect → crash → reconnect cycle through the `adaedge` facade.
//! The exhaustive fault suites live with their crates
//! (`crates/storage/tests/spool_recovery.rs`,
//! `crates/core/tests/spool_integration.rs`); this test keeps the happy
//! path plus one crash under the root `cargo test` umbrella.

use adaedge::codecs::faultkit;
use adaedge::codecs::CodecRegistry;
use adaedge::core::spooling::{
    run_reconnect, spool_offline_egress, IngestLedger, ReplayConfig, SpoolSink,
};
use adaedge::core::{AggKind, OfflineAdaEdge, OfflineConfig, OptimizationTarget};
use adaedge::datasets::{CbfConfig, CbfStream, SegmentSource};
use adaedge::storage::{Spool, SpoolConfig};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "adaedge-saf-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn disconnect_crash_reconnect_delivers_every_segment_exactly_once() {
    let dir = tmpdir();
    let mut cfg = SpoolConfig::new(&dir);
    cfg.segment_max_bytes = 8 * 1024;
    cfg.sync_interval = Duration::from_secs(3600);

    // Disconnect: compress 60 segments under the storage budget, draining
    // egress into the durable spool every 10 segments.
    let mut engine_cfg = OfflineConfig::new(1 << 20, OptimizationTarget::agg(AggKind::Sum));
    engine_cfg.precision = 4;
    let mut edge = OfflineAdaEdge::new(engine_cfg).expect("engine");
    let mut stream = CbfStream::new(CbfConfig::default(), 256);
    let mut sink = SpoolSink::new(Spool::open(cfg.clone()).expect("spool"));
    for tick in 0..60u64 {
        edge.ingest(&stream.next_segment()).expect("ingest");
        if (tick + 1) % 10 == 0 {
            spool_offline_egress(&mut edge, &mut sink, usize::MAX, tick).expect("drain");
        }
    }
    assert_eq!(sink.spooled_blocks(), 60);
    let durable = sink.spool().stats().durable_seq;
    assert_eq!(durable, 60, "drains sync at ship boundaries");

    // Power cut: tear the open segment's unsynced tail, then recover.
    let spool = sink.into_spool();
    let path = spool.open_segment_path().expect("open segment");
    let synced = spool.open_segment_synced_bytes();
    let len = spool.open_segment_len();
    drop(spool);
    if len > synced {
        faultkit::file_truncate_at(&path, synced + (len - synced) / 2).expect("tear");
    }
    let mut spool = Spool::open(cfg).expect("crash recovery");
    assert_eq!(
        spool.stats().next_seq - 1,
        60,
        "everything below the durable horizon survives the crash"
    );

    // Reconnect: replay through the frame packer, ACK-gated GC, dedup.
    let registry = CodecRegistry::new(4);
    let replay_cfg = ReplayConfig {
        records_per_tick: 8,
        verify_decode: true,
        ..ReplayConfig::default()
    };
    let mut ledger = IngestLedger::new();
    let mut frames = 0usize;
    let report = run_reconnect(&mut spool, &mut ledger, &registry, &replay_cfg, |f| {
        assert!(f.used <= replay_cfg.frame.payload_cap);
        frames += 1;
    })
    .expect("reconnect");

    assert_eq!(report.ingested_records, 60, "exactly once");
    assert_eq!(report.duplicate_records, 0);
    assert_eq!(report.lost_records, 0);
    assert_eq!(report.decode_failures, 0);
    assert_eq!(report.final_acked_seq, 60);
    assert_eq!(report.frames_emitted as usize, frames);
    assert!(frames > 0);
    assert_eq!(
        report.spool.closed_segments, 0,
        "ACK-gated GC collected the backlog"
    );

    // A second reconnect finds nothing new: the ledger is the authority.
    let report2 = run_reconnect(&mut spool, &mut ledger, &registry, &replay_cfg, |_| {})
        .expect("reconnect again");
    assert_eq!(report2.ingested_records, 0);
    assert_eq!(report2.final_acked_seq, 60);
    drop(spool);
    std::fs::remove_dir_all(&dir).ok();
}
