#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
#
# Usage: scripts/verify.sh
# Runs from the repository root regardless of the invocation directory.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> forced-scalar backend gate (ADAEDGE_SIMD=scalar, full codec suite)"
ADAEDGE_SIMD=scalar cargo test -q -p adaedge-codecs

echo "==> forced-scalar decode-fuzz (reference tier must survive the same corpus)"
ADAEDGE_SIMD=scalar cargo test --release -q -p adaedge-codecs --test decode_fuzz

echo "==> decode-fuzz smoke (fixed seeds, detected SIMD backend)"
cargo test --release -q -p adaedge-codecs --test decode_fuzz

echo "==> kernel equivalence proptests (release)"
cargo test --release -q -p adaedge-codecs --test kernel_equivalence

echo "==> batched scheduling equivalence (K>1 engine smoke, release)"
cargo test --release -q -p adaedge-core --test batch_equivalence

echo "==> shard equivalence + delta-sync staleness (release)"
cargo test --release -q -p adaedge-core --test shard_equivalence

echo "==> fleet equivalence (1-stream bit-identity, interleaving, evict/restore)"
cargo test --release -q -p adaedge-core --test fleet_equivalence

echo "==> spool crash-recovery fault suite (520 crash points, release)"
cargo test --release -q -p adaedge-storage --test spool_recovery

echo "==> spool store-and-forward integration (48h-disconnect smoke, release)"
cargo test --release -q -p adaedge-core --test spool_integration

echo "==> uplink chaos suite (lossy-link exactly-once, breaker recovery, release)"
cargo test --release -q -p adaedge-core --test uplink_chaos

echo "==> frame packer NACK-requeue proptests"
cargo test --release -q -p adaedge-core --test frame_packer_props

echo "==> engine throughput smoke (--quick)"
cargo run --release -q -p adaedge-bench --bin engine_throughput -- --quick

echo "==> fleet throughput smoke (1k streams, --quick)"
cargo run --release -q -p adaedge-bench --bin fleet_throughput -- --quick

echo "==> spool throughput smoke (--quick)"
cargo run --release -q -p adaedge-bench --bin spool_throughput -- --quick

echo "==> uplink goodput smoke (--quick)"
cargo run --release -q -p adaedge-bench --bin uplink_goodput -- --quick

echo "verify: OK"
